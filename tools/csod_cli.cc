// csod — command-line front end for the CSOD library.
//
// Subcommands:
//   csod generate --out=events.txt [--n=4000 --sparsity=50 --nodes=8
//                  --mode=1800 --seed=1]
//       Write a synthetic distributed click-log event file.
//
//   csod detect   --in=events.txt [--m=400 --k=5 --seed=42 --iterations=0]
//       Run CS-based distributed k-outlier detection over the file's nodes.
//
//   csod topk     --in=events.txt [--m=400 --k=5 ...]
//       Run the zero-mode top-k extension.
//
//   csod exact    --in=events.txt [--k=5]
//       Centralized exact reference answer.
//
//   csod query    --in=table.csv --sql="SELECT Outlier 5 SUM(Score), g
//                 FROM t GROUP BY g" [--m= --seed= --iterations=]
//       Run the paper's query template over a CSV table (one 'node'
//       column names the owning node; remaining columns are attributes).

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "tools/cli_commands.h"

namespace {

using namespace csod;

int Usage() {
  std::fprintf(stderr,
               "usage: csod <generate|detect|topk|exact|query> [flags]\n"
               "  generate --out=FILE [--n= --sparsity= --nodes= --mode= "
               "--seed=]\n"
               "  detect   --in=FILE  [--m= --k= --seed= --iterations= --n=\n"
               "                       --telemetry-json=FILE]\n"
               "  topk     --in=FILE  [--m= --k= --seed= --iterations= --n=\n"
               "                       --telemetry-json=FILE]\n"
               "  exact    --in=FILE  [--k=]\n"
               "  query    --in=CSV --sql=QUERY [--m= --seed= --iterations=]\n");
  return 2;
}

tools::DetectOptions DetectOptionsFromFlags(const FlagParser& flags) {
  tools::DetectOptions options;
  options.m = static_cast<size_t>(flags.GetInt("m", 400));
  options.k = static_cast<size_t>(flags.GetInt("k", 5));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  options.iterations = static_cast<size_t>(flags.GetInt("iterations", 0));
  options.n_override = static_cast<size_t>(flags.GetInt("n", 0));
  return options;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "csod: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv).Check();
  if (flags.positional().empty()) return Usage();
  const std::string command = flags.positional().front();

  if (command == "generate") {
    const std::string out = flags.GetString("out", "");
    if (out.empty()) return Usage();
    tools::GenerateOptions options;
    options.n = static_cast<size_t>(flags.GetInt("n", 4000));
    options.sparsity = static_cast<size_t>(flags.GetInt("sparsity", 50));
    options.num_nodes = static_cast<size_t>(flags.GetInt("nodes", 8));
    options.mode = flags.GetDouble("mode", 1800.0);
    options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
    auto written = tools::WriteSyntheticEvents(out, options);
    if (!written.ok()) return Fail(written.status());
    std::printf("wrote %zu records to %s (%zu keys, %zu nodes, %zu planted "
                "outliers)\n",
                written.Value(), out.c_str(), options.n, options.num_nodes,
                options.sparsity);
    return 0;
  }

  const std::string in = flags.GetString("in", "");
  if (in.empty()) return Usage();

  if (command == "query") {
    const std::string sql = flags.GetString("sql", "");
    if (sql.empty()) return Usage();
    auto table = tools::LoadCsvTable(in);
    if (!table.ok()) return Fail(table.status());
    auto report =
        tools::RunQuery(table.Value(), sql, DetectOptionsFromFlags(flags));
    if (!report.ok()) return Fail(report.status());
    std::fputs(report.Value().c_str(), stdout);
    return 0;
  }

  auto events = tools::LoadEvents(in);
  if (!events.ok()) return Fail(events.status());

  // --telemetry-json=FILE attaches a live sink to the run and writes the
  // deterministic snapshot (DESIGN.md §9) after the report.
  const std::string telemetry_path = flags.GetString("telemetry-json", "");
  obs::Telemetry telemetry;

  Result<std::string> report = Status::Unimplemented("unknown command");
  if (command == "detect" || command == "topk") {
    tools::DetectOptions options = DetectOptionsFromFlags(flags);
    if (!telemetry_path.empty()) options.telemetry = &telemetry;
    report = command == "detect" ? tools::RunDetect(events.Value(), options)
                                 : tools::RunTopK(events.Value(), options);
  } else if (command == "exact") {
    report = tools::RunExact(events.Value(),
                             static_cast<size_t>(flags.GetInt("k", 5)));
  } else {
    return Usage();
  }
  if (!report.ok()) return Fail(report.status());
  std::fputs(report.Value().c_str(), stdout);
  if (!telemetry_path.empty()) {
    const Status written = obs::WriteSnapshotJsonFile(telemetry,
                                                      telemetry_path);
    if (!written.ok()) return Fail(written);
    std::printf("telemetry: %s\n", telemetry_path.c_str());
  }
  return 0;
}
