// sim_driver — seeded randomized simulation harness (DESIGN.md §15).
//
// Modes:
//   (default)        sweep: run --scenarios seeded scenarios from --seed0
//   --replay=SEED    re-run one scenario bit-identically and print verdict
//   --corpus=FILE    run every seed listed in FILE (the regression corpus:
//                    one decimal seed per line, '#' starts a comment)
//   --list           print the scenario each seed derives to, without
//                    running anything
//
// Exit status is nonzero iff any scenario violated an invariant, so the
// driver can gate CI directly. Every failure line is followed by a
// one-line replay recipe (`csod sim --replay SEED`).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "sim/runner.h"
#include "sim/scenario.h"

namespace {

using namespace csod;

int ReplayOne(uint64_t seed) {
  std::string line;
  const sim::ScenarioOutcome outcome = sim::ReplaySeed(seed, &line);
  std::printf("seed=%llu %s\n", static_cast<unsigned long long>(seed),
              line.c_str());
  std::printf("digest=%016llx %s\n",
              static_cast<unsigned long long>(outcome.digest),
              outcome.ok() ? "ok" : "FAIL");
  for (const std::string& violation : outcome.violations) {
    std::printf("  violation: %s\n", violation.c_str());
  }
  return outcome.ok() ? 0 : 1;
}

// Seeds from a regression-corpus file: one decimal seed per line,
// whitespace trimmed, '#' to end of line is a comment, blank lines skipped.
bool LoadCorpus(const std::string& path, std::vector<uint64_t>* seeds) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "sim_driver: cannot open corpus %s\n", path.c_str());
    return false;
  }
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    const size_t last = line.find_last_not_of(" \t\r");
    const std::string token = line.substr(first, last - first + 1);
    char* end = nullptr;
    const unsigned long long seed = std::strtoull(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0') {
      std::fprintf(stderr, "sim_driver: %s:%zu: bad seed '%s'\n", path.c_str(),
                   lineno, token.c_str());
      return false;
    }
    seeds->push_back(static_cast<uint64_t>(seed));
  }
  return true;
}

int RunCorpus(const std::string& path) {
  std::vector<uint64_t> seeds;
  if (!LoadCorpus(path, &seeds)) return 2;
  size_t failed = 0;
  for (uint64_t seed : seeds) {
    std::string line;
    const sim::ScenarioOutcome outcome = sim::ReplaySeed(seed, &line);
    std::printf("seed=%llu digest=%016llx %s %s\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(outcome.digest),
                outcome.ok() ? "ok " : "FAIL", line.c_str());
    if (!outcome.ok()) {
      ++failed;
      for (const std::string& violation : outcome.violations) {
        std::printf("  violation: %s\n", violation.c_str());
      }
      std::printf("  replay: csod sim --replay %llu\n",
                  static_cast<unsigned long long>(seed));
    }
  }
  std::printf("corpus: %zu seeds, %zu failed\n", seeds.size(), failed);
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.Parse(argc, argv).Check();

  if (flags.Has("replay")) {
    return ReplayOne(static_cast<uint64_t>(flags.GetInt("replay", 0)));
  }
  const std::string corpus = flags.GetString("corpus", "");
  if (!corpus.empty()) return RunCorpus(corpus);

  sim::SweepOptions options;
  options.seed0 = static_cast<uint64_t>(flags.GetInt("seed0", 1));
  options.scenarios = static_cast<size_t>(flags.GetInt("scenarios", 200));
  options.verbose = flags.GetBool("verbose", false);

  if (flags.GetBool("list", false)) {
    for (size_t i = 0; i < options.scenarios; ++i) {
      const uint64_t seed = options.seed0 + i;
      std::printf("seed=%llu %s\n", static_cast<unsigned long long>(seed),
                  sim::ScenarioToString(sim::ScenarioFromSeed(seed)).c_str());
    }
    return 0;
  }

  const sim::SweepResult result = sim::RunSweep(options);
  std::fputs(result.report.c_str(), stdout);
  for (const std::string& failure : result.failures) {
    std::printf("%s\n", failure.c_str());
  }
  std::printf("combined-digest=%016llx\n",
              static_cast<unsigned long long>(result.combined_digest));
  return result.ok() ? 0 : 1;
}
