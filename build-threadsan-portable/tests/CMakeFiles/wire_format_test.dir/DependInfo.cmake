
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wire_format_test.cc" "tests/CMakeFiles/wire_format_test.dir/wire_format_test.cc.o" "gcc" "tests/CMakeFiles/wire_format_test.dir/wire_format_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-threadsan-portable/src/query/CMakeFiles/csod_query.dir/DependInfo.cmake"
  "/root/repo/build-threadsan-portable/src/core/CMakeFiles/csod_core.dir/DependInfo.cmake"
  "/root/repo/build-threadsan-portable/src/mapreduce/CMakeFiles/csod_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build-threadsan-portable/src/sketch/CMakeFiles/csod_sketch.dir/DependInfo.cmake"
  "/root/repo/build-threadsan-portable/src/dist/CMakeFiles/csod_dist.dir/DependInfo.cmake"
  "/root/repo/build-threadsan-portable/src/workload/CMakeFiles/csod_workload.dir/DependInfo.cmake"
  "/root/repo/build-threadsan-portable/src/outlier/CMakeFiles/csod_outlier.dir/DependInfo.cmake"
  "/root/repo/build-threadsan-portable/src/cs/CMakeFiles/csod_cs.dir/DependInfo.cmake"
  "/root/repo/build-threadsan-portable/src/la/CMakeFiles/csod_la.dir/DependInfo.cmake"
  "/root/repo/build-threadsan-portable/src/common/CMakeFiles/csod_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
