
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/count_min.cc" "src/sketch/CMakeFiles/csod_sketch.dir/count_min.cc.o" "gcc" "src/sketch/CMakeFiles/csod_sketch.dir/count_min.cc.o.d"
  "/root/repo/src/sketch/count_sketch.cc" "src/sketch/CMakeFiles/csod_sketch.dir/count_sketch.cc.o" "gcc" "src/sketch/CMakeFiles/csod_sketch.dir/count_sketch.cc.o.d"
  "/root/repo/src/sketch/hyperloglog.cc" "src/sketch/CMakeFiles/csod_sketch.dir/hyperloglog.cc.o" "gcc" "src/sketch/CMakeFiles/csod_sketch.dir/hyperloglog.cc.o.d"
  "/root/repo/src/sketch/sketch_protocols.cc" "src/sketch/CMakeFiles/csod_sketch.dir/sketch_protocols.cc.o" "gcc" "src/sketch/CMakeFiles/csod_sketch.dir/sketch_protocols.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-threadsan-portable/src/dist/CMakeFiles/csod_dist.dir/DependInfo.cmake"
  "/root/repo/build-threadsan-portable/src/outlier/CMakeFiles/csod_outlier.dir/DependInfo.cmake"
  "/root/repo/build-threadsan-portable/src/common/CMakeFiles/csod_common.dir/DependInfo.cmake"
  "/root/repo/build-threadsan-portable/src/cs/CMakeFiles/csod_cs.dir/DependInfo.cmake"
  "/root/repo/build-threadsan-portable/src/la/CMakeFiles/csod_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
