
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generators.cc" "src/workload/CMakeFiles/csod_workload.dir/generators.cc.o" "gcc" "src/workload/CMakeFiles/csod_workload.dir/generators.cc.o.d"
  "/root/repo/src/workload/key_dictionary.cc" "src/workload/CMakeFiles/csod_workload.dir/key_dictionary.cc.o" "gcc" "src/workload/CMakeFiles/csod_workload.dir/key_dictionary.cc.o.d"
  "/root/repo/src/workload/partitioner.cc" "src/workload/CMakeFiles/csod_workload.dir/partitioner.cc.o" "gcc" "src/workload/CMakeFiles/csod_workload.dir/partitioner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-threadsan-portable/src/cs/CMakeFiles/csod_cs.dir/DependInfo.cmake"
  "/root/repo/build-threadsan-portable/src/common/CMakeFiles/csod_common.dir/DependInfo.cmake"
  "/root/repo/build-threadsan-portable/src/la/CMakeFiles/csod_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
