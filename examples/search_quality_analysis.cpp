// The paper's motivating scenario (Section 1, Figure 1): web-search
// service quality analysis. Success/quick-back click scores are logged in
// geo-distributed data centers; the analyst wants the (market, vertical,
// url, ...) keys whose globally aggregated score diverges most from the
// norm — at a fraction of the communication cost of shipping all logs.
//
// Build & run:  ./build/examples/search_quality_analysis

#include <cstdio>
#include <string>

#include "common/format.h"
#include "core/csod.h"

int main() {
  using namespace csod;

  // --- Build the global key dictionary from structured log keys. ---
  workload::ClickLogOptions log_options;
  log_options.score_type = workload::ClickScoreType::kCoreSearch;
  log_options.n_override = 8000;
  log_options.sparsity_override = 120;
  log_options.mode = 1800.0;  // Figure 1(a)'s mode.
  log_options.seed = 2015;
  auto data = workload::GenerateClickLog(log_options).MoveValue();

  workload::GlobalKeyDictionary dictionary;
  for (size_t i = 0; i < data.global.size(); ++i) {
    dictionary.Intern(workload::ClickLogKeyForIndex(i));
  }

  // --- Spread the scores over 8 data centers, adversarially. ---
  workload::PartitionOptions part;
  part.num_nodes = 8;
  part.strategy = workload::PartitionStrategy::kSkewedSplit;
  part.cancellation_noise = 2500.0;  // Local "outliers" that cancel globally.
  part.seed = 99;
  auto slices = workload::PartitionAdditive(data.global, part).MoveValue();

  dist::Cluster cluster(data.global.size());
  for (auto& slice : slices) cluster.AddNode(std::move(slice)).Value();

  const size_t k = 5;

  // --- Baseline ALL: exact but expensive. ---
  dist::AllTransmitProtocol all;
  dist::CommStats all_comm;
  auto truth = all.Run(cluster, k, &all_comm).MoveValue();

  // --- Baseline K+delta: three rounds of local estimates. ---
  dist::KPlusDeltaOptions kd_options;
  kd_options.delta = 95;
  dist::KPlusDeltaProtocol kd(kd_options);
  dist::CommStats kd_comm;
  auto kd_result = kd.Run(cluster, k, &kd_comm).MoveValue();

  // --- The CS-based protocol: one round, M measurements per node. ---
  dist::CsProtocolOptions cs_options;
  cs_options.m = 900;
  cs_options.seed = 42;
  cs_options.iterations = 180;
  dist::CsOutlierProtocol cs_protocol(cs_options);
  dist::CommStats cs_comm;
  auto cs_result = cs_protocol.Run(cluster, k, &cs_comm).MoveValue();

  // --- Report. ---
  std::printf("Top-%zu outlier keys (CS-based detection):\n", k);
  for (size_t i = 0; i < cs_result.outliers.size(); ++i) {
    const auto& o = cs_result.outliers[i];
    std::printf("  %zu. score %9.1f (norm %.1f)  %s\n", i + 1, o.value,
                cs_result.mode,
                dictionary.KeyOf(o.key_index).Value().c_str());
  }

  std::printf("\n%-10s %12s %8s %10s %10s\n", "method", "bytes", "rounds",
              "EK", "EV");
  auto report = [&](const std::string& name, const dist::CommStats& comm,
                    const outlier::OutlierSet& result) {
    std::printf("%-10s %12s %8llu %9.1f%% %9.2f%%\n", name.c_str(),
                FormatBytes(comm.bytes_total()).c_str(),
                static_cast<unsigned long long>(comm.rounds()),
                100.0 * outlier::ErrorOnKey(truth, result),
                100.0 * outlier::ErrorOnValue(truth, result));
  };
  report("ALL", all_comm, truth);
  report("K+delta", kd_comm, kd_result);
  report("BOMP", cs_comm, cs_result);

  std::printf("\nBOMP shipped %.2f%% of ALL's bytes.\n",
              100.0 * static_cast<double>(cs_comm.bytes_total()) /
                  static_cast<double>(all_comm.bytes_total()));
  return 0;
}
