// Service-telemetry monitoring with one sketch, many queries: latency
// sums per endpoint are collected at regional gateways; from a single
// merged M-sized measurement the operator gets the k worst endpoints, the
// fleet-wide mean, and tail percentiles — the "similar aggregation
// queries (mean, top-k, percentile)" extension the paper points to.
//
// Also demonstrates the wire format: the gateways' measurements go
// through encode/decode as they would on a real network.
//
// Build & run:  ./build/examples/telemetry_percentiles

#include <cstdio>
#include <vector>

#include "common/format.h"
#include "core/csod.h"

int main() {
  using namespace csod;

  const size_t kNumEndpoints = 6000;
  const size_t kNumGateways = 6;

  // Endpoint latency scores concentrate around a healthy 120ms baseline;
  // a few endpoints misbehave in both directions (overloaded / dead).
  workload::ClickLogOptions gen;
  gen.n_override = kNumEndpoints;
  gen.sparsity_override = 60;
  gen.mode = 120.0;
  gen.jitter = 1.5;
  gen.min_divergence = 40.0;
  gen.max_divergence = 5000.0;
  gen.seed = 7;
  auto data = workload::GenerateClickLog(gen).MoveValue();

  workload::PartitionOptions part;
  part.num_nodes = kNumGateways;
  part.strategy = workload::PartitionStrategy::kUniformSplit;
  part.seed = 8;
  auto slices = workload::PartitionAdditive(data.global, part).MoveValue();

  // Each gateway compresses locally and ships its measurement over the
  // wire; the monitor decodes and merges.
  core::DetectorOptions options;
  options.n = kNumEndpoints;
  options.m = 512;
  options.seed = 99;
  options.iterations = 90;
  auto monitor = core::DistributedOutlierDetector::Create(options).MoveValue();

  cs::MeasurementMatrix gateway_matrix(options.m, options.n, options.seed);
  cs::Compressor gateway_compressor(&gateway_matrix);
  uint64_t wire_bytes = 0;
  for (const auto& slice : slices) {
    auto y = gateway_compressor.Compress(slice).MoveValue();
    // On the wire.
    const std::string message = dist::EncodeMeasurement(y).MoveValue();
    wire_bytes += message.size();
    auto decoded = dist::DecodeMeasurement(message).MoveValue();
    monitor->AddSourceMeasurement(std::move(decoded)).Value();
  }

  auto recovery = monitor->Recover(options.iterations).MoveValue();

  std::printf("Fleet: %zu endpoints, %zu gateways, %s on the wire total\n\n",
              kNumEndpoints, kNumGateways, FormatBytes(wire_bytes).c_str());
  std::printf("Recovered baseline latency: %.1f ms (true %.1f ms)\n",
              recovery.mode, data.mode);

  auto worst = outlier::KOutliersFromRecovery(recovery, 5);
  std::printf("\nWorst endpoints by divergence from baseline:\n");
  for (const auto& o : worst.outliers) {
    std::printf("  endpoint %-6zu latency %9.1f ms\n", o.key_index, o.value);
  }

  std::printf("\nAggregates from the same sketch:\n");
  std::printf("  mean latency:   %8.2f ms\n",
              outlier::RecoveredMean(recovery, kNumEndpoints).Value());
  for (double p : {50.0, 95.0, 99.0, 99.9}) {
    std::printf("  p%-5.1f:         %8.2f ms\n", p,
                outlier::RecoveredPercentile(recovery, kNumEndpoints, p)
                    .Value());
  }

  const double all_bytes =
      static_cast<double>(kNumGateways) * kNumEndpoints * 8;
  std::printf("\nCommunication: %.1f%% of shipping every endpoint value.\n",
              100.0 * static_cast<double>(wire_bytes) / all_bytes);
  return 0;
}
