// Distributed top-k via compressive sensing (the Section 6.2 extension):
// when the data's mode is zero, the recovered components rank directly as
// top-k. Compares the single-round CS approach against the classic
// multi-round TA and TPUT baselines on power-law "trending topic" counts.
//
// Build & run:  ./build/examples/trending_topk

#include <cstdio>

#include "common/format.h"
#include "core/csod.h"

int main() {
  using namespace csod;

  const size_t kNumTopics = 20000;
  const size_t kNumNodes = 10;
  const size_t kK = 10;

  // Power-law topic counts (alpha chosen heavy so trends stand out).
  workload::PowerLawOptions gen;
  gen.n = kNumTopics;
  gen.alpha = 0.8;
  gen.scale = 10.0;
  gen.seed = 2015;
  auto counts = workload::GeneratePowerLaw(gen).MoveValue();

  workload::PartitionOptions part;
  part.num_nodes = kNumNodes;
  part.strategy = workload::PartitionStrategy::kUniformSplit;
  part.seed = 4;
  auto slices = workload::PartitionAdditive(counts, part).MoveValue();

  dist::Cluster cluster(kNumTopics);
  for (auto& slice : slices) cluster.AddNode(std::move(slice)).Value();

  const auto truth = outlier::TopK(counts, kK);

  // --- CS-based single round. ---
  core::DetectorOptions options;
  options.n = kNumTopics;
  options.m = 700;
  options.seed = 21;
  options.iterations = 64;
  auto detector =
      core::DistributedOutlierDetector::Create(options).MoveValue();
  for (dist::NodeId id : cluster.NodeIds()) {
    detector->AddSource(*cluster.Slice(id).Value()).Value();
  }
  auto cs_top = detector->DetectTopK(kK).MoveValue();
  const uint64_t cs_bytes = kNumNodes * options.m * dist::kMeasurementBytes;

  // --- TA and TPUT baselines (exact, multi-round). ---
  dist::CommStats ta_comm;
  auto ta = dist::RunThresholdAlgorithmTopK(cluster, kK, 4, &ta_comm)
                .MoveValue();
  dist::CommStats tput_comm;
  auto tput = dist::RunTputTopK(cluster, kK, &tput_comm).MoveValue();

  // --- Report. ---
  size_t cs_hits = 0;
  for (size_t i = 0; i < kK; ++i) {
    for (size_t j = 0; j < kK; ++j) {
      if (cs_top[i].key_index == truth[j].key_index) {
        ++cs_hits;
        break;
      }
    }
  }

  std::printf("True top-%zu trending topics vs CS recovery:\n", kK);
  std::printf("%-6s %-14s %-14s\n", "rank", "true key", "CS key");
  for (size_t i = 0; i < kK; ++i) {
    std::printf("%-6zu %-14zu %-14zu\n", i + 1, truth[i].key_index,
                cs_top[i].key_index);
  }

  std::printf("\n%-8s %12s %8s %12s\n", "method", "bytes", "rounds",
              "top-k hits");
  std::printf("%-8s %12s %8d %9zu/%zu\n", "BOMP",
              FormatBytes(cs_bytes).c_str(), 1, cs_hits, kK);
  std::printf("%-8s %12s %8llu %9s\n", "TA",
              FormatBytes(ta_comm.bytes_total()).c_str(),
              static_cast<unsigned long long>(ta_comm.rounds()), "exact");
  std::printf("%-8s %12s %8llu %9s\n", "TPUT",
              FormatBytes(tput_comm.bytes_total()).c_str(),
              static_cast<unsigned long long>(tput_comm.rounds()), "exact");
  std::printf(
      "\nThe CS sketch answers in ONE round; TA needs %llu rounds of "
      "coordination.\n",
      static_cast<unsigned long long>(ta_comm.rounds()));
  (void)ta;
  (void)tput;
  return 0;
}
