// The production interface of Section 6.1.2: the analyst writes the
// paper's query template against distributed log tables; the engine
// parses it, pushes WHERE + partial aggregation to the nodes, ships M
// measurements per node, and answers with BOMP.
//
// Build & run:  ./build/examples/sql_outlier_query

#include <cstdio>
#include <string>
#include <vector>

#include "common/format.h"
#include "common/grid.h"
#include "common/random.h"
#include "query/executor.h"
#include "query/query.h"

namespace {

using namespace csod;

// Synthesizes 8 data-center log tables with the production GROUP-BY
// attributes. Every (market, vertical) pair collects small per-event
// scores summing near 1800; a handful of pairs are broken.
std::vector<query::LogTable> MakeClickLogs() {
  const int kMarkets = 30;
  const int kVerticals = 12;
  const int kNodes = 8;
  static const char* kVerticalNames[] = {"web", "image", "video", "news",
                                         "shopping", "maps", "local", "ads",
                                         "books", "flights", "finance",
                                         "weather"};
  std::vector<query::LogTable> tables(kNodes);
  for (auto& table : tables) {
    table.columns = {"QueryDate", "Market", "Vertical", "DataCentre",
                     "Score"};
  }

  Rng rng(2015);
  for (int market = 0; market < kMarkets; ++market) {
    for (int vertical = 0; vertical < kVerticals; ++vertical) {
      const std::string m = "mkt-" + std::to_string(market);
      const std::string v = kVerticalNames[vertical];
      // Spread exactly 1800 over the nodes with integer shares (text
      // round-trips exactly, keeping the aggregate's mode sharp).
      int remaining = 1800;
      for (int node = 0; node < kNodes; ++node) {
        const int share =
            node + 1 == kNodes
                ? remaining
                : 1800 / kNodes +
                      static_cast<int>(rng.NextBounded(101)) - 50;
        remaining -= share;
        tables[node].AddRow({"2015-05-03", m, v,
                             "DC" + std::to_string(node % 4 + 1),
                             std::to_string(share)})
            .Check();
      }
    }
  }
  // Incidents: a crawler bug tanks (mkt-11, video); a click-fraud ring
  // inflates (mkt-4, ads).
  tables[2].AddRow({"2015-05-03", "mkt-11", "video", "DC3", "-41800"})
      .Check();
  tables[5].AddRow({"2015-05-03", "mkt-4", "ads", "DC2", "27000"}).Check();
  // Noise in an excluded date that WHERE must remove.
  tables[0].AddRow({"2015-04-01", "mkt-0", "web", "DC1", "500000"}).Check();
  return tables;
}

}  // namespace

int main() {
  const std::string sql =
      "SELECT Outlier 5 SUM(Score), Market, Vertical\n"
      "FROM Click_Streams PARAMS(2015-05-03, 2015-05-03)\n"
      "WHERE QueryDate = '2015-05-03'\n"
      "GROUP BY Market, Vertical;";
  std::printf("%s\n\n", sql.c_str());

  auto parsed = query::ParseQuery(sql);
  parsed.status().Check();

  const auto tables = MakeClickLogs();
  query::ExecutionOptions options;
  options.m = 120;
  options.seed = 42;
  options.iterations = 24;
  auto result =
      query::ExecuteDistributed(parsed.Value(), tables, options).MoveValue();

  std::printf("answer (mode %.1f over %zu group keys):\n", result.mode,
              result.key_space);
  std::printf("%-24s %14s %14s\n", "Market|Vertical", "SUM(Score)",
              "divergence");
  for (const auto& row : result.rows) {
    std::printf("%-24s %14.1f %14.1f\n", row.group_key.c_str(), row.value,
                row.rank_score);
  }

  auto exact =
      query::ExecuteExact(parsed.Value(), tables).MoveValue();
  std::printf("\nexact reference top key: %s (%.1f)\n",
              exact.rows.empty() ? "-" : exact.rows[0].group_key.c_str(),
              exact.rows.empty() ? 0.0 : exact.rows[0].value);
  std::printf("communication: %s vs %s for shipping all keys (%.1f%%)\n",
              FormatBytes(result.bytes_shipped).c_str(),
              FormatBytes(result.bytes_all).c_str(),
              100.0 * static_cast<double>(result.bytes_shipped) /
                  static_cast<double>(result.bytes_all));
  return 0;
}
