// Sliding-window anomaly monitoring: the Section-1 streaming scenario
// ("terabytes of new click log every 10 minutes") where queries cover the
// last W epochs, not all of history. One M-sized sketch per epoch gives
// O(1) expiry and O(W·M) window queries by linearity. Also shows the
// adaptive protocol choosing M online when the sparsity is unknown.
//
// Build & run:  ./build/examples/sliding_window_monitoring

#include <cstdio>
#include <vector>

#include "core/csod.h"

int main() {
  using namespace csod;

  const size_t kNumKeys = 5000;
  const size_t kWindow = 3;  // Analyst asks about the last 3 epochs.

  core::WindowedDetectorOptions options;
  options.n = kNumKeys;
  options.m = 300;
  options.seed = 2015;
  options.iterations = 40;
  options.window_epochs = kWindow;
  auto monitor =
      core::WindowedOutlierDetector::Create(options).MoveValue();

  // Six epochs of traffic; an incident burns keys 777/888 in epochs 1-2
  // and a fresh incident hits key 4242 in epoch 5.
  for (uint64_t epoch = 0; epoch < 6; ++epoch) {
    monitor->AdvanceEpoch();

    // Baseline epoch traffic: every key near 100.
    workload::ClickLogOptions gen;
    gen.n_override = kNumKeys;
    gen.sparsity_override = 1;
    gen.mode = 100.0;
    gen.min_divergence = 1.0;
    gen.max_divergence = 2.0;
    gen.seed = 100 + epoch;
    auto base = workload::GenerateClickLog(gen).MoveValue();
    monitor->Ingest(cs::SparseSlice::FromDense(base.global)).Check();

    cs::SparseSlice incident;
    if (epoch == 1 || epoch == 2) {
      incident.indices = {777, 888};
      incident.values = {25000.0, -20000.0};
    }
    if (epoch == 5) {
      incident.indices = {4242};
      incident.values = {60000.0};
    }
    if (!incident.indices.empty()) {
      monitor->Ingest(incident).Check();
    }

    auto result = monitor->Detect(2).MoveValue();
    std::printf("epoch %llu (window covers %zu epochs): top anomalies:",
                static_cast<unsigned long long>(epoch),
                monitor->epochs_retained());
    for (const auto& o : result.outliers) {
      if (o.divergence > 1000.0) {
        std::printf("  key %zu (%.0f)", o.key_index, o.value);
      }
    }
    std::printf("\n");
  }
  std::printf("\nNote how keys 777/888 age out of the window after epoch 4 "
              "and key 4242 appears instantly in epoch 5 — all from W "
              "sketches of %zu doubles, never re-reading history.\n\n",
              options.m);

  // --- Adaptive M: one-shot detection without knowing the sparsity. ---
  workload::ClickLogOptions gen;
  gen.n_override = kNumKeys;
  gen.sparsity_override = 45;
  gen.seed = 7;
  auto data = workload::GenerateClickLog(gen).MoveValue();
  workload::PartitionOptions part;
  part.num_nodes = 8;
  part.strategy = workload::PartitionStrategy::kSkewedSplit;
  part.seed = 8;
  auto slices = workload::PartitionAdditive(data.global, part).MoveValue();
  dist::Cluster cluster(kNumKeys);
  for (auto& slice : slices) cluster.AddNode(std::move(slice)).Value();

  dist::AdaptiveCsOptions adaptive_options;
  adaptive_options.initial_m = 32;
  adaptive_options.max_m = 2048;
  adaptive_options.seed = 21;
  adaptive_options.iterations = 60;
  dist::AdaptiveCsProtocol adaptive(adaptive_options);
  dist::CommStats comm;
  auto detected = adaptive.Run(cluster, 5, &comm).MoveValue();

  std::printf("Adaptive protocol (sparsity unknown a priori):\n");
  for (const auto& round : adaptive.rounds()) {
    std::printf("  round: M = %-5zu relative residual %.2e%s%s\n", round.m,
                round.relative_residual,
                round.topk_stable ? "  [top-k stable]" : "",
                round.accepted ? "  -> accepted" : "");
  }
  std::printf("Detected mode %.1f; strongest outlier key %zu (%.1f). Total "
              "cost: %llu bytes across %llu rounds.\n",
              detected.mode,
              detected.outliers.empty() ? 0 : detected.outliers[0].key_index,
              detected.outliers.empty() ? 0.0 : detected.outliers[0].value,
              static_cast<unsigned long long>(comm.bytes_total()),
              static_cast<unsigned long long>(comm.rounds()));
  return 0;
}
