// Fraud detection with incremental updates: card-transaction risk scores
// accumulate per account across regional processing centers. Most accounts
// net out near a common baseline; compromised accounts diverge. The
// detector keeps one M-sized sketch per region, so each new batch of
// transactions costs O(nnz * M) locally and O(M) at the aggregator —
// the streaming scenario of Section 1 (terabytes of new logs every
// 10 minutes).
//
// Build & run:  ./build/examples/fraud_detection

#include <cstdio>
#include <vector>

#include "common/grid.h"
#include "common/random.h"
#include "core/csod.h"

namespace {

// One batch of transaction risk deltas for a region: a few accounts
// touched, small honest drift plus (optionally) a fraud spike.
csod::cs::SparseSlice MakeBatch(size_t num_accounts, size_t touched,
                                csod::Rng* rng) {
  csod::cs::SparseSlice batch;
  for (size_t t = 0; t < touched; ++t) {
    batch.indices.push_back(rng->NextBounded(num_accounts));
    batch.values.push_back(
        csod::QuantizeToGrid((rng->NextDouble() - 0.5) * 2.0));
  }
  return batch;
}

}  // namespace

int main() {
  using namespace csod;

  const size_t kNumAccounts = 5000;
  const size_t kNumRegions = 4;
  const size_t kK = 3;

  core::DetectorOptions options;
  options.n = kNumAccounts;
  options.m = 200;
  options.seed = 1337;
  auto detector =
      core::DistributedOutlierDetector::Create(options).MoveValue();

  // Every account starts at the risk baseline 50 (the unknown-mode
  // setting: the detector is never told this number).
  Rng rng(8);
  std::vector<double> baseline(kNumAccounts, 50.0);
  std::vector<core::SourceId> regions;
  {
    workload::PartitionOptions part;
    part.num_nodes = kNumRegions;
    part.strategy = workload::PartitionStrategy::kUniformSplit;
    part.seed = 3;
    auto slices = workload::PartitionAdditive(baseline, part).MoveValue();
    for (const auto& slice : slices) {
      regions.push_back(detector->AddSource(slice).MoveValue());
    }
  }

  std::printf("Day 0: %zu accounts across %zu regions, baseline risk 50\n",
              kNumAccounts, kNumRegions);

  // --- Stream three batches; batch 2 contains the fraud. ---
  const size_t kFraudAccountA = 1234;
  const size_t kFraudAccountB = 4321;
  for (int batch_id = 1; batch_id <= 3; ++batch_id) {
    for (size_t r = 0; r < kNumRegions; ++r) {
      cs::SparseSlice batch = MakeBatch(kNumAccounts, 40, &rng);
      if (batch_id == 2 && r == 1) {
        batch.indices.push_back(kFraudAccountA);
        batch.values.push_back(900.0);  // Card-testing burst.
      }
      if (batch_id == 2 && r == 3) {
        batch.indices.push_back(kFraudAccountB);
        batch.values.push_back(-700.0);  // Refund-abuse pattern.
      }
      detector->ApplyDelta(regions[r], batch).Check();
    }

    auto result = detector->Detect(kK).MoveValue();
    std::printf("\nAfter batch %d (recovered baseline %.1f):\n", batch_id,
                result.mode);
    for (size_t i = 0; i < result.outliers.size(); ++i) {
      const auto& o = result.outliers[i];
      std::printf("  account %-6zu risk %8.1f (divergence %7.1f)%s\n",
                  o.key_index, o.value, o.divergence,
                  (o.key_index == kFraudAccountA ||
                   o.key_index == kFraudAccountB)
                      ? "  <-- planted fraud"
                      : "");
    }
  }

  // --- A region is decommissioned; its sketch is subtracted in O(M). ---
  detector->RemoveSource(regions[0]).Check();
  std::printf("\nRegion 0 decommissioned (%zu sources remain) — detector "
              "still answers:\n",
              detector->num_sources());
  auto result = detector->Detect(kK).MoveValue();
  for (const auto& o : result.outliers) {
    std::printf("  account %-6zu risk %8.1f\n", o.key_index, o.value);
  }
  return 0;
}
