// Quickstart: detect the k values furthest from the (unknown) mode of a
// data vector that lives additively across several nodes, transmitting
// only M measurements per node instead of the whole key space.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "common/format.h"
#include "core/csod.h"

int main() {
  using namespace csod;

  // 1. A global aggregate of N = 4096 keys: almost every key sums to 5000,
  //    but a handful of keys diverge wildly. No node sees this vector —
  //    it exists only as the sum of the per-node slices built below.
  workload::MajorityDominatedOptions data_options;
  data_options.n = 4096;
  data_options.sparsity = 25;  // 25 true outliers.
  data_options.mode = 5000.0;
  data_options.seed = 2015;
  auto global = workload::GenerateMajorityDominated(data_options).MoveValue();

  // 2. Split it across 8 nodes the adversarial way: keys are scattered,
  //    shares are skewed, and zero-sum noise makes local values look
  //    nothing like the global ones (local outliers != global outliers).
  workload::PartitionOptions part_options;
  part_options.num_nodes = 8;
  part_options.strategy = workload::PartitionStrategy::kSkewedSplit;
  part_options.cancellation_noise = 3000.0;
  part_options.seed = 7;
  auto slices = workload::PartitionAdditive(global, part_options).MoveValue();

  // 3. Create the detector: every node will compress its slice with the
  //    same seeded M x N Gaussian matrix; only M doubles travel per node.
  core::DetectorOptions options;
  options.n = data_options.n;
  options.m = 320;  // The per-node communication budget.
  options.seed = 42;
  // Default is the paper's R = f(k) ∈ [2k, 5k] — enough for the top-k
  // keys. Raising R past the data's sparsity makes values exact too.
  options.iterations = 40;
  auto detector =
      core::DistributedOutlierDetector::Create(options).MoveValue();
  for (const auto& slice : slices) {
    detector->AddSource(slice).Value();
  }

  // 4. Detect the 5 strongest outliers and the mode.
  const size_t k = 5;
  auto detected = detector->Detect(k).MoveValue();
  auto truth = outlier::ExactKOutliers(global, k);

  std::printf("Recovered mode: %.2f (true mode: %.2f)\n\n", detected.mode,
              data_options.mode);
  std::printf("%-6s %-12s %-12s %-10s\n", "rank", "key", "value",
              "divergence");
  for (size_t i = 0; i < detected.outliers.size(); ++i) {
    const auto& o = detected.outliers[i];
    std::printf("%-6zu %-12zu %-12.2f %-10.2f\n", i + 1, o.key_index,
                o.value, o.divergence);
  }

  std::printf("\nError on key vs exact answer: %.1f%%\n",
              100.0 * outlier::ErrorOnKey(truth, detected));
  std::printf("Error on value vs exact answer: %.3f%%\n",
              100.0 * outlier::ErrorOnValue(truth, detected));

  const double cs_bytes = 8.0 * options.m * 8;           // L * M * 8B
  const double all_bytes = 8.0 * data_options.n * 8;     // L * N * 8B
  std::printf(
      "\nCommunication: %s per run vs %s for transmitting everything "
      "(%.1f%% of ALL)\n",
      FormatBytes(static_cast<uint64_t>(cs_bytes)).c_str(),
      FormatBytes(static_cast<uint64_t>(all_bytes)).c_str(),
      100.0 * cs_bytes / all_bytes);
  return 0;
}
