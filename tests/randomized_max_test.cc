#include "dist/randomized_max.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "workload/partitioner.h"

namespace csod::dist {
namespace {

std::unique_ptr<Cluster> MakeCluster(const std::vector<double>& global,
                                     size_t nodes, uint64_t seed) {
  workload::PartitionOptions part;
  part.num_nodes = nodes;
  part.strategy = workload::PartitionStrategy::kUniformSplit;
  part.seed = seed;
  auto cluster = std::make_unique<Cluster>(global.size());
  auto slices = workload::PartitionAdditive(global, part).MoveValue();
  for (auto& slice : slices) cluster->AddNode(std::move(slice)).Value();
  return cluster;
}

TEST(RandomizedMaxTest, Validation) {
  CommStats comm;
  RandomizedMaxOptions options;
  Cluster empty(10);
  EXPECT_FALSE(RunRandomizedMax(empty, options, &comm).ok());

  Cluster cluster(4);
  cs::SparseSlice negative;
  negative.indices = {0};
  negative.values = {-1.0};
  ASSERT_TRUE(cluster.AddNode(negative).ok());
  EXPECT_FALSE(RunRandomizedMax(cluster, options, &comm).ok());
  EXPECT_FALSE(RunRandomizedMax(cluster, options, nullptr).ok());
}

TEST(RandomizedMaxTest, FindsDominantMax) {
  // A value that towers over the rest: the group containing it wins
  // essentially every repetition.
  const size_t n = 512;
  std::vector<double> global(n);
  Rng rng(3);
  for (double& v : global) v = rng.NextDouble() * 5.0;
  global[137] = 10000.0;

  auto cluster = MakeCluster(global, 4, 5);
  RandomizedMaxOptions options;
  options.seed = 11;
  CommStats comm;
  auto result = RunRandomizedMax(*cluster, options, &comm).MoveValue();
  EXPECT_EQ(result.key_index, 137u);
  EXPECT_NEAR(result.value, 10000.0, 1e-6);
  EXPECT_EQ(comm.rounds(), 1u);

  // Communication: 2 values per node per repetition + final lookup —
  // sublinear in N.
  EXPECT_LT(comm.bytes_total(), 4u * n * kValueBytes);
}

TEST(RandomizedMaxTest, CommunicationMatchesRepetitions) {
  std::vector<double> global(64, 1.0);
  global[5] = 500.0;
  auto cluster = MakeCluster(global, 3, 7);
  RandomizedMaxOptions options;
  options.repetitions = 40;
  CommStats comm;
  auto result = RunRandomizedMax(*cluster, options, &comm).MoveValue();
  EXPECT_EQ(result.repetitions, 40u);
  EXPECT_EQ(comm.bytes_total(),
            3u * (2 * 40 * kValueBytes) + 3u * kKeyValueBytes);
}

TEST(RandomizedMaxTest, DeterministicGivenSeed) {
  std::vector<double> global(128, 2.0);
  global[9] = 999.0;
  auto cluster = MakeCluster(global, 4, 9);
  RandomizedMaxOptions options;
  options.seed = 21;
  CommStats c1, c2;
  auto a = RunRandomizedMax(*cluster, options, &c1).MoveValue();
  auto b = RunRandomizedMax(*cluster, options, &c2).MoveValue();
  EXPECT_EQ(a.key_index, b.key_index);
  EXPECT_EQ(a.value, b.value);
}

}  // namespace
}  // namespace csod::dist
