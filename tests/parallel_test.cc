#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cs/measurement_matrix.h"
#include "la/vector_ops.h"

namespace csod {
namespace {

// Restores the global parallelism limit after each test.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetParallelismLimit(
        std::max<size_t>(1, std::thread::hardware_concurrency()));
  }
};

TEST_F(ParallelTest, CoversWholeRangeExactlyOnce) {
  for (size_t threads : {1u, 2u, 4u, 7u}) {
    SetParallelismLimit(threads);
    const size_t count = 1003;
    std::vector<std::atomic<int>> touched(count);
    for (auto& t : touched) t.store(0);
    ParallelFor(count, 1, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
    });
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(touched[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST_F(ParallelTest, ZeroCountIsNoop) {
  bool called = false;
  ParallelFor(0, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST_F(ParallelTest, SmallRangeStaysSerial) {
  SetParallelismLimit(8);
  // min_chunk larger than count: single chunk on the calling thread.
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id seen;
  ParallelFor(10, 100, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, self);
}

TEST_F(ParallelTest, LimitControlsMaxThreads) {
  SetParallelismLimit(3);
  EXPECT_EQ(GetParallelismLimit(), 3u);
  SetParallelismLimit(0);  // Clamped to >= 1.
  EXPECT_GE(GetParallelismLimit(), 1u);
}

TEST_F(ParallelTest, MatrixKernelsIdenticalAtAnyThreadCount) {
  // The correlation and cache-construction results must be bit-identical
  // regardless of the parallelism limit.
  std::vector<double> r(64);
  for (size_t i = 0; i < r.size(); ++i) {
    r[i] = std::sin(static_cast<double>(i) + 1.0);
  }

  SetParallelismLimit(1);
  cs::MeasurementMatrix serial(64, 3000, 7);
  auto serial_corr = serial.CorrelateAll(r).MoveValue();

  SetParallelismLimit(4);
  cs::MeasurementMatrix parallel(64, 3000, 7);
  auto parallel_corr = parallel.CorrelateAll(r).MoveValue();

  EXPECT_EQ(serial_corr, parallel_corr);  // Bitwise.
  for (size_t j = 0; j < 3000; j += 371) {
    EXPECT_EQ(serial.Column(j), parallel.Column(j)) << "column " << j;
  }
}

}  // namespace
}  // namespace csod
