#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "cs/bomp.h"
#include "cs/measurement_matrix.h"
#include "la/vector_ops.h"

namespace csod {
namespace {

// Restores the global parallelism limit after each test.
class ParallelTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetParallelismLimit(
        std::max<size_t>(1, std::thread::hardware_concurrency()));
  }
};

TEST_F(ParallelTest, CoversWholeRangeExactlyOnce) {
  for (size_t threads : {1u, 2u, 4u, 7u}) {
    SetParallelismLimit(threads);
    const size_t count = 1003;
    std::vector<std::atomic<int>> touched(count);
    for (auto& t : touched) t.store(0);
    ParallelFor(count, 1, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
    });
    for (size_t i = 0; i < count; ++i) {
      EXPECT_EQ(touched[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST_F(ParallelTest, ZeroCountIsNoop) {
  bool called = false;
  ParallelFor(0, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST_F(ParallelTest, SmallRangeStaysSerial) {
  SetParallelismLimit(8);
  // min_chunk larger than count: single chunk on the calling thread.
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id seen;
  ParallelFor(10, 100, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, self);
}

TEST_F(ParallelTest, LimitControlsMaxThreads) {
  SetParallelismLimit(3);
  EXPECT_EQ(GetParallelismLimit(), 3u);
  SetParallelismLimit(0);  // Clamped to >= 1.
  EXPECT_GE(GetParallelismLimit(), 1u);
}

TEST_F(ParallelTest, ParallelForChunksUsesCallerChunkCount) {
  SetParallelismLimit(4);
  const size_t count = 1000;
  const size_t chunk_count = ParallelChunkCount(count, 100);
  EXPECT_EQ(chunk_count, 4u);  // min(limit, count / min_chunk).
  std::vector<std::atomic<int>> touched(count);
  for (auto& t : touched) t.store(0);
  std::vector<std::atomic<int>> chunk_seen(chunk_count);
  for (auto& c : chunk_seen) c.store(0);
  ParallelForChunks(count, chunk_count,
                    [&](size_t chunk, size_t begin, size_t end) {
                      ASSERT_LT(chunk, chunk_count);
                      chunk_seen[chunk].fetch_add(1);
                      for (size_t i = begin; i < end; ++i) {
                        touched[i].fetch_add(1);
                      }
                    });
  for (size_t i = 0; i < count; ++i) EXPECT_EQ(touched[i].load(), 1);
  for (size_t c = 0; c < chunk_count; ++c) EXPECT_EQ(chunk_seen[c].load(), 1);
}

TEST_F(ParallelTest, CorrelateKernelsBitIdenticalAcrossLimits) {
  // n > 256 (kMinColumnsPerChunk) so the parallel paths actually engage.
  const size_t m = 48;
  const size_t n = 2000;
  std::vector<double> r(m);
  for (size_t i = 0; i < m; ++i) {
    r[i] = std::cos(0.7 * static_cast<double>(i)) - 0.3;
  }
  std::vector<bool> mask(n, false);
  for (size_t j = 0; j < n; j += 13) mask[j] = true;

  SetParallelismLimit(1);
  cs::MeasurementMatrix matrix(m, n, 99);
  const auto base_corr = matrix.CorrelateAll(r).MoveValue();
  const auto base_pick = matrix.CorrelateArgmax(r, &mask).MoveValue();

  for (size_t limit : {2u, 8u}) {
    SetParallelismLimit(limit);
    const auto corr = matrix.CorrelateAll(r).MoveValue();
    EXPECT_EQ(corr, base_corr) << "limit=" << limit;  // Bitwise.
    const auto pick = matrix.CorrelateArgmax(r, &mask).MoveValue();
    EXPECT_EQ(pick.index, base_pick.index) << "limit=" << limit;
    EXPECT_EQ(pick.correlation, base_pick.correlation) << "limit=" << limit;
    EXPECT_EQ(pick.abs_correlation, base_pick.abs_correlation)
        << "limit=" << limit;
  }

  // Changing the limit mid-process (after the pool has already grown and
  // run jobs) must not change results either.
  SetParallelismLimit(8);
  ParallelFor(n, 1, [](size_t, size_t) {});  // Grow the pool.
  SetParallelismLimit(3);
  const auto corr = matrix.CorrelateAll(r).MoveValue();
  EXPECT_EQ(corr, base_corr);
  const auto pick = matrix.CorrelateArgmax(r, &mask).MoveValue();
  EXPECT_EQ(pick.index, base_pick.index);
  EXPECT_EQ(pick.abs_correlation, base_pick.abs_correlation);
}

TEST_F(ParallelTest, MatrixKernelsIdenticalAtAnyThreadCount) {
  // The correlation and cache-construction results must be bit-identical
  // regardless of the parallelism limit.
  std::vector<double> r(64);
  for (size_t i = 0; i < r.size(); ++i) {
    r[i] = std::sin(static_cast<double>(i) + 1.0);
  }

  SetParallelismLimit(1);
  cs::MeasurementMatrix serial(64, 3000, 7);
  auto serial_corr = serial.CorrelateAll(r).MoveValue();

  SetParallelismLimit(4);
  cs::MeasurementMatrix parallel(64, 3000, 7);
  auto parallel_corr = parallel.CorrelateAll(r).MoveValue();

  EXPECT_EQ(serial_corr, parallel_corr);  // Bitwise.
  for (size_t j = 0; j < 3000; j += 371) {
    EXPECT_EQ(serial.Column(j), parallel.Column(j)) << "column " << j;
  }
}

TEST_F(ParallelTest, BlockedReductionsBitIdenticalAcrossLimits) {
  // Multiply / MultiplySparse / BiasColumn reduce fixed-geometry blocks
  // (kReductionBlockColumns / kReductionBlockNnz) in block order, so the
  // sums must be bitwise identical at any limit. n > 2048 forces the
  // multi-block path.
  const size_t m = 24;
  const size_t n = 5000;
  std::vector<double> x(n);
  Rng rng(31);
  for (double& v : x) v = rng.NextGaussian();
  std::vector<size_t> sp_idx;
  std::vector<double> sp_val;
  for (size_t j = 0; j < n; j += 7) {
    sp_idx.push_back(j);
    sp_val.push_back(x[j]);
  }

  SetParallelismLimit(1);
  cs::MeasurementMatrix matrix(m, n, 55);
  const auto base_mul = matrix.Multiply(x).MoveValue();
  const auto base_sparse = matrix.MultiplySparse(sp_idx, sp_val).MoveValue();
  const auto base_bias = matrix.BiasColumn();

  for (size_t limit : {2u, 8u}) {
    SetParallelismLimit(limit);
    EXPECT_EQ(matrix.Multiply(x).MoveValue(), base_mul) << "limit=" << limit;
    EXPECT_EQ(matrix.MultiplySparse(sp_idx, sp_val).MoveValue(), base_sparse)
        << "limit=" << limit;
    EXPECT_EQ(matrix.BiasColumn(), base_bias) << "limit=" << limit;
  }
}

TEST_F(ParallelTest, BompSupportsIdenticalAcrossLimits) {
  // End-to-end determinism: recovered supports and coefficients from the
  // fused-argmax OMP loop are bit-identical at any thread count. n >= 3000
  // so the CorrelateArgmax parallel path engages (kMinColumnsPerChunk=256).
  const size_t m = 64;
  const size_t n = 3000;
  std::vector<double> x(n, 2.0);  // Mode b = 2.
  x[100] = 9.0;
  x[2048] = -5.0;
  x[2999] = 6.5;

  SetParallelismLimit(1);
  cs::MeasurementMatrix matrix(m, n, 123);
  const auto y = matrix.Multiply(x).MoveValue();
  cs::BompOptions options;
  options.max_iterations = 40;
  const auto base = cs::RunBomp(matrix, y, options).MoveValue();
  ASSERT_FALSE(base.entries.empty());

  for (size_t limit : {2u, 8u}) {
    SetParallelismLimit(limit);
    const auto run = cs::RunBomp(matrix, y, options).MoveValue();
    ASSERT_EQ(run.entries.size(), base.entries.size()) << "limit=" << limit;
    for (size_t i = 0; i < run.entries.size(); ++i) {
      EXPECT_EQ(run.entries[i].index, base.entries[i].index);
      EXPECT_EQ(run.entries[i].value, base.entries[i].value);  // Bitwise.
    }
    EXPECT_EQ(run.mode, base.mode);
    EXPECT_EQ(run.iterations, base.iterations);
  }
}

}  // namespace
}  // namespace csod
