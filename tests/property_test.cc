// Randomized end-to-end property sweeps: the library's load-bearing
// invariants checked across many seeds and configurations via
// parameterized suites.

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/csod.h"
#include "la/vector_ops.h"

namespace csod {
namespace {

// ---------------------------------------------------------------------
// Property 1: measurement linearity survives any partitioning — the
// global measurement assembled from per-node compressions equals the
// direct compression of the aggregate, for every strategy and seed.
class LinearityProperty
    : public ::testing::TestWithParam<
          std::tuple<workload::PartitionStrategy, uint64_t>> {};

TEST_P(LinearityProperty, MeasurementsAggregateExactly) {
  const auto [strategy, seed] = GetParam();
  workload::ClickLogOptions gen;
  gen.n_override = 700;
  gen.sparsity_override = 25;
  gen.seed = seed;
  auto data = workload::GenerateClickLog(gen).MoveValue();

  workload::PartitionOptions part;
  part.num_nodes = 5;
  part.strategy = strategy;
  part.cancellation_noise =
      strategy == workload::PartitionStrategy::kSkewedSplit ? 4000.0 : 0.0;
  part.seed = seed + 1;
  auto slices = workload::PartitionAdditive(data.global, part).MoveValue();

  cs::MeasurementMatrix matrix(130, 700, seed + 2);
  cs::Compressor compressor(&matrix);
  std::vector<std::vector<double>> measurements;
  for (const auto& slice : slices) {
    measurements.push_back(compressor.Compress(slice).MoveValue());
  }
  auto aggregated =
      cs::Compressor::AggregateMeasurements(measurements).MoveValue();
  auto direct = compressor.Compress(data.global).MoveValue();
  EXPECT_LT(la::DistanceL2(aggregated, direct),
            1e-9 * (1.0 + la::Norm2(direct)));
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndSeeds, LinearityProperty,
    ::testing::Combine(
        ::testing::Values(workload::PartitionStrategy::kUniformSplit,
                          workload::PartitionStrategy::kSkewedSplit,
                          workload::PartitionStrategy::kByKey),
        ::testing::Values(1u, 7u, 42u)));

// ---------------------------------------------------------------------
// Property 2: with a generous budget the full pipeline is exact — for
// many seeds, detection over a skew-partitioned cluster matches the
// centralized reference on keys AND values.
class ExactnessProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExactnessProperty, DetectorMatchesCentralizedReference) {
  const uint64_t seed = GetParam();
  const size_t n = 600;
  const size_t s = 12;
  const size_t k = 5;
  workload::MajorityDominatedOptions gen;
  gen.n = n;
  gen.sparsity = s;
  gen.seed = seed;
  auto global = workload::GenerateMajorityDominated(gen).MoveValue();
  const auto truth = outlier::ExactKOutliers(global, k);

  workload::PartitionOptions part;
  part.num_nodes = 7;
  part.strategy = workload::PartitionStrategy::kSkewedSplit;
  part.cancellation_noise = 3000.0;
  part.seed = seed + 1;
  auto slices = workload::PartitionAdditive(global, part).MoveValue();

  core::DetectorOptions options;
  options.n = n;
  options.m = 220;  // Generous for s = 12.
  options.seed = seed + 2;
  options.iterations = s + 6;
  auto detector =
      core::DistributedOutlierDetector::Create(options).MoveValue();
  for (const auto& slice : slices) {
    ASSERT_TRUE(detector->AddSource(slice).ok());
  }
  auto detected = detector->Detect(k).MoveValue();

  EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(truth, detected), 0.0)
      << "seed " << seed;
  EXPECT_LT(outlier::ErrorOnValue(truth, detected), 1e-6) << "seed " << seed;
  EXPECT_NEAR(detected.mode, 5000.0, 1e-3) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactnessProperty,
                         ::testing::Range(uint64_t{100}, uint64_t{110}));

// ---------------------------------------------------------------------
// Property 3: aggregate queries from an exact recovery match the dense
// reference across seeds.
class AggregateProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AggregateProperty, RecoveredAggregatesMatchDense) {
  const uint64_t seed = GetParam();
  const size_t n = 500;
  workload::MajorityDominatedOptions gen;
  gen.n = n;
  gen.sparsity = 10;
  gen.seed = seed;
  auto x = workload::GenerateMajorityDominated(gen).MoveValue();

  cs::MeasurementMatrix matrix(160, n, seed + 5);
  auto y = matrix.Multiply(x).MoveValue();
  cs::BompOptions options;
  options.max_iterations = 18;
  auto recovery = cs::RunBomp(matrix, y, options).MoveValue();

  double exact_sum = 0.0;
  for (double v : x) exact_sum += v;
  EXPECT_NEAR(outlier::RecoveredSum(recovery, n), exact_sum,
              std::fabs(exact_sum) * 1e-6);

  std::vector<double> sorted = x;
  std::sort(sorted.begin(), sorted.end());
  const double exact_median = sorted[(n + 1) / 2 - 1];
  EXPECT_NEAR(outlier::RecoveredPercentile(recovery, n, 50).Value(),
              exact_median, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateProperty,
                         ::testing::Range(uint64_t{200}, uint64_t{208}));

// ---------------------------------------------------------------------
// Property 4: protocol results are invariant to node granularity — the
// same data split across 2, 4, or 12 nodes yields identical recoveries
// (the measurement only depends on the aggregate).
class GranularityProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(GranularityProperty, NodeCountDoesNotChangeAnswer) {
  const size_t num_nodes = GetParam();
  workload::MajorityDominatedOptions gen;
  gen.n = 400;
  gen.sparsity = 8;
  gen.seed = 77;
  auto global = workload::GenerateMajorityDominated(gen).MoveValue();

  workload::PartitionOptions part;
  part.num_nodes = num_nodes;
  part.strategy = workload::PartitionStrategy::kUniformSplit;
  part.seed = 78;
  auto slices = workload::PartitionAdditive(global, part).MoveValue();

  dist::Cluster cluster(400);
  for (auto& slice : slices) {
    ASSERT_TRUE(cluster.AddNode(std::move(slice)).ok());
  }
  dist::CsProtocolOptions options;
  options.m = 140;
  options.seed = 5;
  options.iterations = 12;
  dist::CsOutlierProtocol protocol(options);
  dist::CommStats comm;
  auto result = protocol.Run(cluster, 4, &comm).MoveValue();

  // Reference: single-node "cluster" with the whole aggregate.
  dist::Cluster single(400);
  ASSERT_TRUE(single.AddNode(cs::SparseSlice::FromDense(global)).ok());
  dist::CsOutlierProtocol reference(options);
  dist::CommStats ref_comm;
  auto expected = reference.Run(single, 4, &ref_comm).MoveValue();

  ASSERT_EQ(result.outliers.size(), expected.outliers.size());
  for (size_t i = 0; i < expected.outliers.size(); ++i) {
    EXPECT_EQ(result.outliers[i].key_index, expected.outliers[i].key_index);
    EXPECT_NEAR(result.outliers[i].value, expected.outliers[i].value, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, GranularityProperty,
                         ::testing::Values(1, 2, 4, 12));

}  // namespace
}  // namespace csod
