#include "la/incremental_qr.h"

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "la/vector_ops.h"

namespace csod::la {
namespace {

std::vector<double> RandomVector(size_t m, Rng* rng) {
  std::vector<double> v(m);
  for (double& e : v) e = rng->NextGaussian();
  return v;
}

TEST(IncrementalQrTest, AppendRejectsWrongSize) {
  IncrementalQr qr(4);
  EXPECT_FALSE(qr.AppendColumn({1, 2, 3}).ok());
}

TEST(IncrementalQrTest, SingleColumnNormalized) {
  IncrementalQr qr(3);
  auto r = qr.AppendColumn({3, 0, 4});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.Value(), 5.0);
  EXPECT_NEAR(Norm2(qr.q(0)), 1.0, 1e-14);
}

TEST(IncrementalQrTest, DependentColumnRejected) {
  IncrementalQr qr(3);
  ASSERT_TRUE(qr.AppendColumn({1, 0, 0}).ok());
  ASSERT_TRUE(qr.AppendColumn({0, 1, 0}).ok());
  // In the span of the first two.
  auto r = qr.AppendColumn({2, 3, 0});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.Value(), 0.0);
  EXPECT_EQ(qr.size(), 2u);  // Not appended.
}

TEST(IncrementalQrTest, ProjectionOfSpannedVectorIsIdentity) {
  IncrementalQr qr(3);
  ASSERT_TRUE(qr.AppendColumn({1, 1, 0}).ok());
  ASSERT_TRUE(qr.AppendColumn({0, 1, 1}).ok());
  const std::vector<double> y = {2, 3, 1};  // = 2*(1,1,0) + 1*(0,1,1)
  auto proj = qr.Project(y);
  ASSERT_TRUE(proj.ok());
  EXPECT_NEAR(DistanceL2(proj.Value(), y), 0.0, 1e-12);
}

TEST(IncrementalQrTest, ProjectionOrthogonalComplement) {
  IncrementalQr qr(3);
  ASSERT_TRUE(qr.AppendColumn({1, 0, 0}).ok());
  auto proj = qr.Project({0, 5, 0});
  ASSERT_TRUE(proj.ok());
  EXPECT_NEAR(Norm2(proj.Value()), 0.0, 1e-14);
}

TEST(IncrementalQrTest, LeastSquaresExactSolve) {
  // Overdetermined consistent system: y = 2*a1 - 3*a2.
  IncrementalQr qr(4);
  const std::vector<double> a1 = {1, 2, 0, 1};
  const std::vector<double> a2 = {0, 1, 1, -1};
  ASSERT_TRUE(qr.AppendColumn(a1).ok());
  ASSERT_TRUE(qr.AppendColumn(a2).ok());
  std::vector<double> y(4);
  for (size_t i = 0; i < 4; ++i) y[i] = 2 * a1[i] - 3 * a2[i];
  auto z = qr.SolveLeastSquares(y);
  ASSERT_TRUE(z.ok());
  ASSERT_EQ(z.Value().size(), 2u);
  EXPECT_NEAR(z.Value()[0], 2.0, 1e-12);
  EXPECT_NEAR(z.Value()[1], -3.0, 1e-12);
}

TEST(IncrementalQrTest, LeastSquaresMinimizesResidual) {
  // Inconsistent system: the LS residual must be orthogonal to the span.
  IncrementalQr qr(3);
  const std::vector<double> a1 = {1, 0, 0};
  const std::vector<double> a2 = {1, 1, 0};
  ASSERT_TRUE(qr.AppendColumn(a1).ok());
  ASSERT_TRUE(qr.AppendColumn(a2).ok());
  const std::vector<double> y = {1, 2, 3};
  auto z = qr.SolveLeastSquares(y);
  ASSERT_TRUE(z.ok());
  std::vector<double> fitted(3, 0.0);
  Axpy(z.Value()[0], a1, &fitted);
  Axpy(z.Value()[1], a2, &fitted);
  const std::vector<double> residual = Subtract(y, fitted);
  EXPECT_NEAR(Dot(residual, a1), 0.0, 1e-12);
  EXPECT_NEAR(Dot(residual, a2), 0.0, 1e-12);
}

// Property sweep: orthonormality of Q and reconstruction A = Q R across
// shapes (m, r).
class QrShapeTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(QrShapeTest, OrthonormalityAndReconstruction) {
  const auto [m, r] = GetParam();
  Rng rng(1000 + m * 31 + r);
  IncrementalQr qr(m);
  std::vector<std::vector<double>> columns;
  for (size_t j = 0; j < r; ++j) {
    columns.push_back(RandomVector(m, &rng));
    auto res = qr.AppendColumn(columns.back());
    ASSERT_TRUE(res.ok());
    ASSERT_GT(res.Value(), 0.0);
  }
  ASSERT_EQ(qr.size(), r);

  // Q columns are orthonormal.
  for (size_t i = 0; i < r; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      const double expected = (i == j) ? 1.0 : 0.0;
      EXPECT_NEAR(Dot(qr.q(i), qr.q(j)), expected, 1e-10)
          << "i=" << i << " j=" << j;
    }
  }

  // A = Q R: original column j equals sum_i R(i,j) q_i.
  for (size_t j = 0; j < r; ++j) {
    std::vector<double> reconstructed(m, 0.0);
    for (size_t i = 0; i <= j; ++i) {
      Axpy(qr.r_entry(i, j), qr.q(i), &reconstructed);
    }
    EXPECT_NEAR(DistanceL2(reconstructed, columns[j]), 0.0, 1e-9)
        << "column " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrShapeTest,
    ::testing::Values(std::make_tuple(5, 1), std::make_tuple(8, 4),
                      std::make_tuple(16, 8), std::make_tuple(32, 16),
                      std::make_tuple(64, 32), std::make_tuple(50, 50),
                      std::make_tuple(128, 20)));

TEST(IncrementalQrTest, ApplyQTransposedSizeCheck) {
  IncrementalQr qr(3);
  ASSERT_TRUE(qr.AppendColumn({1, 0, 0}).ok());
  EXPECT_FALSE(qr.ApplyQTransposed({1, 2}).ok());
  EXPECT_FALSE(qr.Project({1, 2, 3, 4}).ok());
}

}  // namespace
}  // namespace csod::la
