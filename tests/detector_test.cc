#include "core/detector.h"

#include <cmath>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "la/vector_ops.h"
#include "outlier/metrics.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

namespace csod::core {
namespace {

DetectorOptions SmallOptions(size_t n = 500, size_t m = 180) {
  DetectorOptions options;
  options.n = n;
  options.m = m;
  options.seed = 11;
  options.iterations = 24;
  return options;
}

std::vector<cs::SparseSlice> MakeSlices(const std::vector<double>& global,
                                        size_t num_nodes, uint64_t seed) {
  workload::PartitionOptions part;
  part.num_nodes = num_nodes;
  part.strategy = workload::PartitionStrategy::kSkewedSplit;
  part.seed = seed;
  return workload::PartitionAdditive(global, part).Value();
}

std::vector<double> TestGlobal(size_t n = 500, size_t s = 12,
                               uint64_t seed = 5) {
  workload::MajorityDominatedOptions gen;
  gen.n = n;
  gen.sparsity = s;
  gen.seed = seed;
  return workload::GenerateMajorityDominated(gen).Value();
}

TEST(DetectorTest, CreateValidatesOptions) {
  DetectorOptions bad;
  EXPECT_FALSE(DistributedOutlierDetector::Create(bad).ok());
  bad.n = 10;
  EXPECT_FALSE(DistributedOutlierDetector::Create(bad).ok());
  bad.m = 4;
  EXPECT_TRUE(DistributedOutlierDetector::Create(bad).ok());
}

TEST(DetectorTest, DetectsPlantedOutliers) {
  const std::vector<double> global = TestGlobal();
  auto detector = DistributedOutlierDetector::Create(SmallOptions()).MoveValue();
  for (const auto& slice : MakeSlices(global, 6, 3)) {
    ASSERT_TRUE(detector->AddSource(slice).ok());
  }
  EXPECT_EQ(detector->num_sources(), 6u);

  const size_t k = 5;
  auto result = detector->Detect(k);
  ASSERT_TRUE(result.ok());
  auto truth = outlier::ExactKOutliers(global, k);
  EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(truth, result.Value()), 0.0);
  EXPECT_NEAR(result.Value().mode, 5000.0, 1e-3);
}

TEST(DetectorTest, DetectRequiresSources) {
  auto detector = DistributedOutlierDetector::Create(SmallOptions()).MoveValue();
  EXPECT_FALSE(detector->Detect(3).ok());
  EXPECT_FALSE(detector->Detect(0).ok());
}

TEST(DetectorTest, RemoveSourceEqualsNeverAdding) {
  const std::vector<double> global = TestGlobal();
  auto slices = MakeSlices(global, 4, 9);

  auto with_removal =
      DistributedOutlierDetector::Create(SmallOptions()).MoveValue();
  std::vector<SourceId> ids;
  for (const auto& slice : slices) {
    ids.push_back(with_removal->AddSource(slice).MoveValue());
  }
  ASSERT_TRUE(with_removal->RemoveSource(ids[2]).ok());

  auto without =
      DistributedOutlierDetector::Create(SmallOptions()).MoveValue();
  for (size_t l = 0; l < slices.size(); ++l) {
    if (l == 2) continue;
    ASSERT_TRUE(without->AddSource(slices[l]).ok());
  }

  EXPECT_LT(la::DistanceL2(with_removal->global_measurement(),
                           without->global_measurement()),
            1e-9);
}

TEST(DetectorTest, RemoveUnknownSourceFails) {
  auto detector = DistributedOutlierDetector::Create(SmallOptions()).MoveValue();
  EXPECT_FALSE(detector->RemoveSource(42).ok());
}

TEST(DetectorTest, ApplyDeltaEqualsRecompression) {
  const std::vector<double> global = TestGlobal();
  auto slices = MakeSlices(global, 3, 17);

  auto incremental =
      DistributedOutlierDetector::Create(SmallOptions()).MoveValue();
  std::vector<SourceId> ids;
  for (const auto& slice : slices) {
    ids.push_back(incremental->AddSource(slice).MoveValue());
  }
  // New data arrives at node 1: a fresh outlier and a mode shift on one key.
  cs::SparseSlice delta;
  delta.indices = {42, 260};
  delta.values = {30000.0, -4.0};
  ASSERT_TRUE(incremental->ApplyDelta(ids[1], delta).ok());

  // Reference: recompute from scratch with the delta folded into slice 1.
  auto fresh = DistributedOutlierDetector::Create(SmallOptions()).MoveValue();
  for (size_t l = 0; l < slices.size(); ++l) {
    cs::SparseSlice slice = slices[l];
    if (l == 1) {
      slice.indices.insert(slice.indices.end(), delta.indices.begin(),
                           delta.indices.end());
      slice.values.insert(slice.values.end(), delta.values.begin(),
                          delta.values.end());
    }
    ASSERT_TRUE(fresh->AddSource(slice).ok());
  }

  EXPECT_LT(la::DistanceL2(incremental->global_measurement(),
                           fresh->global_measurement()),
            1e-9);

  // The new outlier at key 42 must now be detected.
  auto result = incremental->Detect(5);
  ASSERT_TRUE(result.ok());
  bool found = false;
  for (const auto& o : result.Value().outliers) {
    if (o.key_index == 42) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(DetectorTest, ApplyDeltaUnknownSourceFails) {
  auto detector = DistributedOutlierDetector::Create(SmallOptions()).MoveValue();
  cs::SparseSlice delta;
  EXPECT_FALSE(detector->ApplyDelta(7, delta).ok());
}

TEST(DetectorTest, AddSourceMeasurementMatchesAddSource) {
  const std::vector<double> global = TestGlobal();
  auto slices = MakeSlices(global, 2, 23);

  auto by_slice = DistributedOutlierDetector::Create(SmallOptions()).MoveValue();
  ASSERT_TRUE(by_slice->AddSource(slices[0]).ok());

  // Simulate the remote node: compress with its own copy of the matrix.
  cs::MeasurementMatrix remote_matrix(SmallOptions().m, SmallOptions().n,
                                      SmallOptions().seed);
  auto y = remote_matrix.MultiplySparse(slices[0].indices, slices[0].values);
  ASSERT_TRUE(y.ok());
  auto by_measurement =
      DistributedOutlierDetector::Create(SmallOptions()).MoveValue();
  ASSERT_TRUE(by_measurement->AddSourceMeasurement(y.MoveValue()).ok());

  EXPECT_EQ(by_slice->global_measurement(),
            by_measurement->global_measurement());
}

TEST(DetectorTest, AddSourceMeasurementSizeChecked) {
  auto detector = DistributedOutlierDetector::Create(SmallOptions()).MoveValue();
  EXPECT_FALSE(detector->AddSourceMeasurement({1.0, 2.0}).ok());
}

TEST(DetectorTest, SaveLoadRoundTrip) {
  const std::vector<double> global = TestGlobal();
  auto original = DistributedOutlierDetector::Create(SmallOptions()).MoveValue();
  std::vector<SourceId> ids;
  for (const auto& slice : MakeSlices(global, 4, 31)) {
    ids.push_back(original->AddSource(slice).MoveValue());
  }

  std::stringstream checkpoint;
  ASSERT_TRUE(original->Save(checkpoint).ok());
  auto restored = DistributedOutlierDetector::Load(checkpoint).MoveValue();

  EXPECT_EQ(restored->num_sources(), original->num_sources());
  EXPECT_EQ(restored->options().n, original->options().n);
  EXPECT_EQ(restored->options().m, original->options().m);
  EXPECT_EQ(restored->options().seed, original->options().seed);
  EXPECT_EQ(restored->global_measurement(), original->global_measurement());

  // Detection agrees bitwise.
  auto a = original->Detect(5).MoveValue();
  auto b = restored->Detect(5).MoveValue();
  ASSERT_EQ(a.outliers.size(), b.outliers.size());
  for (size_t i = 0; i < a.outliers.size(); ++i) {
    EXPECT_EQ(a.outliers[i].key_index, b.outliers[i].key_index);
    EXPECT_EQ(a.outliers[i].value, b.outliers[i].value);
  }

  // Source ids survive: removing an original id works on the restored
  // detector too.
  ASSERT_TRUE(restored->RemoveSource(ids[2]).ok());
  ASSERT_TRUE(original->RemoveSource(ids[2]).ok());
  EXPECT_EQ(restored->global_measurement(), original->global_measurement());
}

TEST(DetectorTest, LoadRejectsGarbage) {
  std::stringstream not_a_checkpoint("hello world");
  EXPECT_FALSE(DistributedOutlierDetector::Load(not_a_checkpoint).ok());

  std::stringstream truncated("csod-detector v1\n500 180 11 24 3\n");
  EXPECT_FALSE(DistributedOutlierDetector::Load(truncated).ok());
}

TEST(DetectorTest, AccessorsExposeConfiguration) {
  auto detector = DistributedOutlierDetector::Create(SmallOptions()).MoveValue();
  EXPECT_EQ(detector->options().n, 500u);
  EXPECT_EQ(detector->options().m, 180u);
  EXPECT_EQ(detector->matrix().n(), 500u);
  EXPECT_EQ(detector->matrix().m(), 180u);
  EXPECT_EQ(detector->global_measurement().size(), 180u);
  EXPECT_EQ(detector->num_sources(), 0u);
}

TEST(DetectorTest, DefaultIterationsUsedWhenUnset) {
  // iterations = 0 selects the paper's f(k) at detection time; detection
  // still succeeds on easy data.
  DetectorOptions options = SmallOptions();
  options.iterations = 0;
  auto detector = DistributedOutlierDetector::Create(options).MoveValue();
  std::vector<double> global(500, 100.0);
  global[17] = 90000.0;
  ASSERT_TRUE(detector->AddSource(cs::SparseSlice::FromDense(global)).ok());
  auto result = detector->Detect(1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.Value().outliers.size(), 1u);
  EXPECT_EQ(result.Value().outliers[0].key_index, 17u);
}

TEST(DetectorTest, DetectTopKOnZeroModeData) {
  // Section 6.2 extension: with mode 0 the recovered entries rank as top-k.
  const size_t n = 400;
  std::vector<double> global(n, 0.0);
  global[10] = 900.0;
  global[20] = 700.0;
  global[30] = 500.0;
  global[40] = -800.0;

  auto detector =
      DistributedOutlierDetector::Create(SmallOptions(n, 120)).MoveValue();
  ASSERT_TRUE(detector->AddSource(cs::SparseSlice::FromDense(global)).ok());
  auto top = detector->DetectTopK(3);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top.Value().size(), 3u);
  EXPECT_EQ(top.Value()[0].key_index, 10u);
  EXPECT_EQ(top.Value()[1].key_index, 20u);
  EXPECT_EQ(top.Value()[2].key_index, 30u);
}

}  // namespace
}  // namespace csod::core
