// Cross-protocol differential test (ISSUE 4 satellite): the same seeded
// workload answered by ALL (exact reference), the CS protocol, the
// adaptive-M CS protocol, and the K+δ baseline must agree within the
// tolerances each protocol documents, across ~20 seeded workloads.
//
// Documented tolerances (the per-protocol contracts under test):
//  - ALL          : exact — EK == 0 and EV < 1e-12 (pure re-aggregation).
//  - CS (BOMP)    : EK == 0 and EV < 1e-6 once M is comfortably past the
//                   sparsity (protocols_test shows M = O(s log N) is
//                   enough; we run M >= 10 s). Recovery is floating-point,
//                   hence the 1e-6 value slack.
//  - Adaptive CS  : same contract as CS once a round is accepted; the
//                   protocol certifies its own answer via the residual /
//                   stable-top-k test.
//  - K+δ          : exact (EK == 0, EV < 1e-9) ONLY on by-key partitions
//                   with same-sign divergences separated beyond the
//                   mode-estimate bias (its round-1 mode estimate is a
//                   sampled *average*, so each sampled outlier shifts it
//                   by magnitude/g; same-sign divergences keep the
//                   divergence ranking invariant under that shift) —
//                   exactly the regime this test constructs. (On skewed
//                   partitions K+δ has no accuracy contract at all; that
//                   failure mode is covered by protocols_test.)
//
// The test also cross-checks the new telemetry layer against CommStats
// and the wire format: the `comm.bytes.<phase>` counters must equal the
// idealized CommStats accounting, and the actual encoded wire size of the
// measurement messages must exceed it by exactly the fixed per-message
// header (DESIGN.md §9).

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "dist/adaptive_cs_protocol.h"
#include "dist/all_protocol.h"
#include "dist/cs_protocol.h"
#include "dist/kplusdelta_protocol.h"
#include "dist/wire_format.h"
#include "obs/telemetry.h"
#include "outlier/metrics.h"
#include "outlier/outlier.h"
#include "workload/partitioner.h"

namespace csod::dist {
namespace {

constexpr size_t kN = 400;        // Key space.
constexpr size_t kSparsity = 10;  // Planted outliers.
constexpr size_t kNodes = 5;
constexpr size_t kK = 5;
constexpr size_t kM = 120;  // >= 10x sparsity: comfortably exact.
constexpr double kMode = 5000.0;

struct Workload {
  std::vector<double> global;
  std::unique_ptr<Cluster> cluster;
  outlier::OutlierSet truth;
};

// A majority-dominated global vector with well-separated planted
// divergences, partitioned by key (each key lives on one node) — the one
// regime where all four protocols carry an exactness contract at once.
Workload MakeWorkload(uint64_t seed) {
  std::mt19937_64 rng(seed * 7919 + 13);
  Workload w;
  w.global.assign(kN, kMode);
  std::uniform_int_distribution<size_t> pick_key(0, kN - 1);
  std::uniform_real_distribution<double> jitter(0.0, 500.0);
  size_t planted = 0;
  while (planted < kSparsity) {
    const size_t key = pick_key(rng);
    if (w.global[key] != kMode) continue;  // Already an outlier.
    // Same-sign magnitude ladder: consecutive divergences 3000 apart, so
    // neither floating-point noise nor K+δ's mode-estimate bias (a
    // uniform shift for same-sign outliers) can reorder or displace them.
    w.global[key] = kMode + 3000.0 * static_cast<double>(planted + 1) +
                    jitter(rng);
    ++planted;
  }

  workload::PartitionOptions part;
  part.num_nodes = kNodes;
  part.strategy = workload::PartitionStrategy::kByKey;
  part.seed = seed + 1;
  auto slices = workload::PartitionAdditive(w.global, part).Value();
  w.cluster = std::make_unique<Cluster>(kN);
  for (auto& slice : slices) {
    EXPECT_TRUE(w.cluster->AddNode(std::move(slice)).ok());
  }
  w.truth = outlier::ExactKOutliers(w.global, kK);
  return w;
}

TEST(DifferentialTest, FourProtocolsAgreeAcrossTwentySeededWorkloads) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Workload w = MakeWorkload(seed);

    // ALL: the exact reference.
    AllTransmitProtocol all(AllEncoding::kVectorized);
    obs::Telemetry all_tele;
    all.set_telemetry(&all_tele);
    CommStats all_comm;
    auto all_result = all.Run(*w.cluster, kK, &all_comm);
    ASSERT_TRUE(all_result.ok());
    EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(w.truth, all_result.Value()), 0.0);
    EXPECT_LT(outlier::ErrorOnValue(w.truth, all_result.Value()), 1e-12);

    // CS: single-round BOMP recovery.
    CsProtocolOptions cs_options;
    cs_options.m = kM;
    cs_options.seed = 100 + seed;
    cs_options.iterations = kSparsity + 4;
    CsOutlierProtocol cs(cs_options);
    obs::Telemetry cs_tele;
    cs.set_telemetry(&cs_tele);
    CommStats cs_comm;
    auto cs_result = cs.Run(*w.cluster, kK, &cs_comm);
    ASSERT_TRUE(cs_result.ok());
    EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(w.truth, cs_result.Value()), 0.0);
    EXPECT_LT(outlier::ErrorOnValue(w.truth, cs_result.Value()), 1e-6);
    EXPECT_NEAR(cs_result.Value().mode, kMode, 1e-6);

    // Adaptive CS: grows M until the recovery certifies itself.
    AdaptiveCsOptions ad_options;
    ad_options.initial_m = 32;
    ad_options.max_m = 512;
    ad_options.seed = 300 + seed;
    ad_options.iterations = kSparsity + 4;
    AdaptiveCsProtocol adaptive(ad_options);
    CommStats ad_comm;
    auto ad_result = adaptive.Run(*w.cluster, kK, &ad_comm);
    ASSERT_TRUE(ad_result.ok());
    EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(w.truth, ad_result.Value()), 0.0);
    EXPECT_LT(outlier::ErrorOnValue(w.truth, ad_result.Value()), 1e-6);

    // K+δ: exact here because the partitioning is by key and the planted
    // divergences dominate any mode-estimate error (g ~ 62 sampled keys
    // cap the bias well below the 3000 inter-outlier separation).
    KPlusDeltaOptions kd_options;
    kd_options.delta = 120;
    kd_options.seed = 500 + seed;
    KPlusDeltaProtocol kd(kd_options);
    CommStats kd_comm;
    auto kd_result = kd.Run(*w.cluster, kK, &kd_comm);
    ASSERT_TRUE(kd_result.ok());
    EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(w.truth, kd_result.Value()), 0.0);
    EXPECT_LT(outlier::ErrorOnValue(w.truth, kd_result.Value()), 1e-9);

    // Communication ordering: ALL is the ceiling the paper normalizes by.
    EXPECT_GE(all_comm.bytes_total(), cs_comm.bytes_total());
    EXPECT_GT(all_comm.bytes_total(), 0u);

    // Telemetry mirrors the idealized CommStats accounting byte-for-byte.
    EXPECT_EQ(all_tele.counter("comm.bytes.full-vector"),
              all_comm.bytes_by_phase().at("full-vector"));
    EXPECT_EQ(all_tele.counter("comm.bytes.full-vector"),
              kNodes * kN * kValueBytes);
    EXPECT_EQ(cs_tele.counter("comm.bytes.measurements"),
              cs_comm.bytes_by_phase().at("measurements"));
    EXPECT_EQ(cs_tele.counter("comm.bytes.measurements"),
              kNodes * kM * kMeasurementBytes);
    EXPECT_GE(all_tele.counter("comm.bytes.full-vector"),
              cs_tele.counter("comm.bytes.measurements"));
    EXPECT_EQ(cs_tele.counter("comm.rounds"), cs_comm.rounds());
    // A fault-free run retries and excludes nothing.
    EXPECT_EQ(cs_tele.counter("comm.retries"), 0u);
    EXPECT_EQ(cs_tele.counter("comm.excluded_nodes"), 0u);

    // The wire format carries exactly the idealized payload plus the fixed
    // per-message header: L messages of M doubles each.
    const uint64_t payload_per_message =
        static_cast<uint64_t>(MeasurementWireSize(kM) -
                              MeasurementWireSize(0));
    EXPECT_EQ(kNodes * payload_per_message,
              cs_tele.counter("comm.bytes.measurements"));

    // The instrumented hot paths actually fired.
    EXPECT_EQ(cs_tele.span("protocol.cs").count, 1u);
    EXPECT_GE(cs_tele.span("bomp.recover").count, 1u);
    EXPECT_EQ(cs_tele.counter("bomp.runs"),
              cs_tele.span("bomp.recover").count);
    EXPECT_GE(cs_tele.counter("sketch.slices"), kNodes);
  }
}

}  // namespace
}  // namespace csod::dist
