#include "cs/basis_pursuit.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/random.h"
#include "cs/measurement_matrix.h"
#include "la/vector_ops.h"
#include "obs/telemetry.h"

namespace csod::cs {
namespace {

TEST(BasisPursuitTest, RejectsWrongMeasurementSize) {
  MeasurementMatrix matrix(8, 16, 1);
  BasisPursuitOptions options;
  EXPECT_FALSE(RunBasisPursuit(matrix, {1, 2, 3}, options).ok());
}

TEST(BasisPursuitTest, ZeroMeasurementGivesZero) {
  MeasurementMatrix matrix(8, 16, 1);
  BasisPursuitOptions options;
  auto result = RunBasisPursuit(matrix, std::vector<double>(8, 0.0), options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(la::Norm2(result.Value().x), 0.0, 1e-9);
}

TEST(BasisPursuitTest, RecoversSparseSupport) {
  const size_t n = 128;
  MeasurementMatrix matrix(64, n, 17);
  std::vector<double> x(n, 0.0);
  x[5] = 10.0;
  x[50] = -8.0;
  x[100] = 12.0;
  auto y = matrix.Multiply(x);
  ASSERT_TRUE(y.ok());

  BasisPursuitOptions options;
  options.max_iterations = 2000;
  auto result = RunBasisPursuit(matrix, y.Value(), options);
  ASSERT_TRUE(result.ok());
  const std::vector<double>& xhat = result.Value().x;

  // The three largest recovered magnitudes must be the planted support.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::partial_sort(order.begin(), order.begin() + 3, order.end(),
                    [&](size_t a, size_t b) {
                      return std::fabs(xhat[a]) > std::fabs(xhat[b]);
                    });
  std::set<size_t> top(order.begin(), order.begin() + 3);
  EXPECT_TRUE(top.count(5));
  EXPECT_TRUE(top.count(50));
  EXPECT_TRUE(top.count(100));

  // Values approximately right (soft-thresholding bias allowed).
  EXPECT_NEAR(xhat[5], 10.0, 1.0);
  EXPECT_NEAR(xhat[50], -8.0, 1.0);
  EXPECT_NEAR(xhat[100], 12.0, 1.0);
}

TEST(BasisPursuitTest, SmallerLambdaFitsTighter) {
  const size_t n = 64;
  MeasurementMatrix matrix(32, n, 23);
  std::vector<double> x(n, 0.0);
  x[10] = 5.0;
  x[20] = -3.0;
  auto y = matrix.Multiply(x);
  ASSERT_TRUE(y.ok());

  BasisPursuitOptions loose;
  loose.lambda = 0.5;
  loose.max_iterations = 1500;
  BasisPursuitOptions tight;
  tight.lambda = 0.001;
  tight.max_iterations = 1500;

  auto r_loose = RunBasisPursuit(matrix, y.Value(), loose);
  auto r_tight = RunBasisPursuit(matrix, y.Value(), tight);
  ASSERT_TRUE(r_loose.ok());
  ASSERT_TRUE(r_tight.ok());
  EXPECT_LT(r_tight.Value().final_residual_norm,
            r_loose.Value().final_residual_norm);
}

TEST(BiasedBasisPursuitTest, RecoversUnknownModeData) {
  // The L1 counterpart to BOMP: bias coefficient unpenalized.
  const size_t n = 200;
  const double b = 500.0;
  std::vector<double> x(n, b);
  x[20] = 1400.0;
  x[150] = -700.0;

  MeasurementMatrix matrix(80, n, 31);
  auto y = matrix.Multiply(x);
  ASSERT_TRUE(y.ok());

  BasisPursuitOptions options;
  options.max_iterations = 3000;
  options.lambda = 1.0;
  auto result = RunBiasedBasisPursuit(matrix, y.Value(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.Value().mode, b, 25.0);

  // The two strongest recovered entries must be the planted outliers.
  std::vector<cs::RecoveredEntry> entries = result.Value().entries;
  std::sort(entries.begin(), entries.end(),
            [&](const cs::RecoveredEntry& a, const cs::RecoveredEntry& c) {
              return std::fabs(a.value - result.Value().mode) >
                     std::fabs(c.value - result.Value().mode);
            });
  ASSERT_GE(entries.size(), 2u);
  std::set<size_t> top = {entries[0].index, entries[1].index};
  EXPECT_TRUE(top.count(20));
  EXPECT_TRUE(top.count(150));
}

TEST(BiasedBasisPursuitTest, UnpenalizedAtomOutOfRangeRejected) {
  MeasurementMatrix matrix(8, 16, 1);
  MatrixDictionary dict(&matrix);
  BasisPursuitOptions options;
  options.unpenalized_atoms = {99};
  std::vector<double> y(8, 1.0);
  EXPECT_FALSE(RunBasisPursuit(dict, y, options).ok());
}

TEST(BasisPursuitTest, TelemetryTransparentAndRecords) {
  // FISTA telemetry parity (ISSUE 8 satellite): a live sink observes the
  // solve — fista.recover span, fista.runs counter, iteration/residual
  // histograms — without changing a single output bit.
  const size_t n = 128;
  MeasurementMatrix matrix(64, n, 41);
  std::vector<double> x(n, 0.0);
  x[7] = 9.0;
  x[90] = -6.0;
  auto y = matrix.Multiply(x).MoveValue();

  BasisPursuitOptions live_options;
  live_options.max_iterations = 400;
  obs::Telemetry telemetry;
  live_options.telemetry = &telemetry;
  auto live = RunBasisPursuit(matrix, y, live_options).MoveValue();

  BasisPursuitOptions plain_options;
  plain_options.max_iterations = 400;
  plain_options.telemetry = obs::Telemetry::Disabled();
  auto plain = RunBasisPursuit(matrix, y, plain_options).MoveValue();

  ASSERT_EQ(live.x.size(), plain.x.size());
  for (size_t i = 0; i < live.x.size(); ++i) {
    uint64_t live_bits, plain_bits;
    std::memcpy(&live_bits, &live.x[i], sizeof(live_bits));
    std::memcpy(&plain_bits, &plain.x[i], sizeof(plain_bits));
    EXPECT_EQ(live_bits, plain_bits) << "x[" << i << "]";
  }
  EXPECT_EQ(live.iterations, plain.iterations);

  // Same instrument names as OMP/CoSaMP/AMP: <engine>.recover span,
  // <engine>.runs counter, iteration and residual value series.
  const std::string snapshot = telemetry.SnapshotJson();
  EXPECT_NE(snapshot.find("fista.recover"), std::string::npos);
  EXPECT_NE(snapshot.find("fista.runs"), std::string::npos);
  EXPECT_NE(snapshot.find("fista.iterations"), std::string::npos);
  EXPECT_NE(snapshot.find("fista.final_residual_norm"), std::string::npos);

  // The disabled singleton records nothing at all.
  EXPECT_EQ(obs::Telemetry::Disabled()->SnapshotJson(),
            obs::Telemetry().SnapshotJson());
}

TEST(BasisPursuitTest, ReportsIterations) {
  MeasurementMatrix matrix(16, 32, 3);
  std::vector<double> x(32, 0.0);
  x[4] = 1.0;
  auto y = matrix.Multiply(x);
  ASSERT_TRUE(y.ok());
  BasisPursuitOptions options;
  options.max_iterations = 50;
  auto result = RunBasisPursuit(matrix, y.Value(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.Value().iterations, 1u);
  EXPECT_LE(result.Value().iterations, 50u);
}

}  // namespace
}  // namespace csod::cs
