#include "mapreduce/cost_model.h"

#include <gtest/gtest.h>

namespace csod::mr {
namespace {

JobStats BaseStats() {
  JobStats stats;
  stats.num_map_tasks = 10;
  stats.num_reduce_tasks = 1;
  stats.map_compute_sec = 5.0;
  stats.reduce_compute_sec = 2.0;
  stats.input_bytes = 1'000'000'000;    // 1 GB
  stats.shuffle_bytes = 100'000'000;    // 100 MB
  return stats;
}

TEST(CostModelTest, Waves) {
  ClusterCostModel model;
  model.num_workers = 10;
  EXPECT_DOUBLE_EQ(model.Waves(0), 0.0);
  EXPECT_DOUBLE_EQ(model.Waves(1), 1.0);
  EXPECT_DOUBLE_EQ(model.Waves(10), 1.0);
  EXPECT_DOUBLE_EQ(model.Waves(11), 2.0);
  EXPECT_DOUBLE_EQ(model.Waves(25), 3.0);
}

TEST(CostModelTest, EndToEndIsSumOfPhases) {
  ClusterCostModel model;
  JobStats stats = BaseStats();
  EXPECT_DOUBLE_EQ(
      model.EndToEndSeconds(stats),
      model.MapPhaseSeconds(stats) + model.ReducePhaseSeconds(stats));
}

TEST(CostModelTest, ShuffleTimeFromBandwidth) {
  ClusterCostModel model;
  model.network_bandwidth_bytes_per_sec = 125e6;  // 1 Gbps
  JobStats stats = BaseStats();
  EXPECT_NEAR(model.ShuffleSeconds(stats), 0.8, 1e-9);  // 100MB / 125MB/s
}

TEST(CostModelTest, MoreShuffleBytesSlower) {
  ClusterCostModel model;
  JobStats small = BaseStats();
  JobStats big = BaseStats();
  big.shuffle_bytes *= 100;
  EXPECT_LT(model.EndToEndSeconds(small), model.EndToEndSeconds(big));
  EXPECT_LT(model.ReducePhaseSeconds(small), model.ReducePhaseSeconds(big));
}

TEST(CostModelTest, MoreComputeSlower) {
  ClusterCostModel model;
  JobStats fast = BaseStats();
  JobStats slow = BaseStats();
  slow.reduce_compute_sec += 50.0;
  EXPECT_LT(model.EndToEndSeconds(fast), model.EndToEndSeconds(slow));
}

TEST(CostModelTest, ComputeScaleApplied) {
  ClusterCostModel base;
  ClusterCostModel scaled = base;
  scaled.compute_scale = 2.0;
  JobStats stats = BaseStats();
  stats.input_bytes = 0;
  stats.shuffle_bytes = 0;
  const double base_map = base.MapPhaseSeconds(stats);
  const double scaled_map = scaled.MapPhaseSeconds(stats);
  // Doubling compute scale doubles the compute share (overhead unchanged).
  EXPECT_NEAR(scaled_map - base_map, stats.map_compute_sec / 10.0, 1e-9);
}

TEST(CostModelTest, MoreWorkersFasterMapPhase) {
  ClusterCostModel few;
  few.num_workers = 2;
  ClusterCostModel many;
  many.num_workers = 10;
  JobStats stats = BaseStats();
  EXPECT_GT(few.MapPhaseSeconds(stats), many.MapPhaseSeconds(stats));
}

TEST(CostModelTest, TupleCostChargedOncePerSide) {
  // The per-tuple CPU cost is two explicit terms: serialization on the map
  // side, deserialization on the reduce side — never the same constant
  // silently charged twice. Zeroing one side must remove exactly that
  // side's share and leave the other untouched.
  ClusterCostModel model;
  model.num_workers = 10;
  JobStats stats;
  stats.num_map_tasks = 10;
  stats.num_reduce_tasks = 10;
  stats.shuffle_tuples = 10'000'000;

  ClusterCostModel no_serialize = model;
  no_serialize.serialize_per_tuple_cpu_sec = 0.0;
  ClusterCostModel no_deserialize = model;
  no_deserialize.deserialize_per_tuple_cpu_sec = 0.0;

  const double tuple_share = 10'000'000 * 10.0e-6 / 10.0;  // 10 s
  EXPECT_NEAR(model.MapPhaseSeconds(stats) -
                  no_serialize.MapPhaseSeconds(stats),
              tuple_share, 1e-9);
  EXPECT_NEAR(model.ReducePhaseSeconds(stats) -
                  no_deserialize.ReducePhaseSeconds(stats),
              tuple_share, 1e-9);
  // And the map phase never charges the deserialize term (nor vice versa).
  EXPECT_DOUBLE_EQ(model.MapPhaseSeconds(stats),
                   no_deserialize.MapPhaseSeconds(stats));
  EXPECT_DOUBLE_EQ(model.ReducePhaseSeconds(stats),
                   no_serialize.ReducePhaseSeconds(stats));
}

TEST(CostModelTest, ShuffleBuildChargedInReducePhase) {
  ClusterCostModel model;
  model.compute_scale = 2.0;
  JobStats with_build = BaseStats();
  with_build.shuffle_build_sec = 3.0;
  JobStats without = BaseStats();
  // Grouping cost lands in the reduce phase (Hadoop's merge/sort side),
  // scaled by compute_scale and the reduce parallelism (1 reduce task).
  EXPECT_NEAR(model.ReducePhaseSeconds(with_build) -
                  model.ReducePhaseSeconds(without),
              3.0 * 2.0 / 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(model.MapPhaseSeconds(with_build),
                   model.MapPhaseSeconds(without));
}

TEST(CostModelTest, StragglerFloorsPhaseCompute) {
  // A phase is never faster than its slowest task, regardless of workers.
  ClusterCostModel model;
  model.num_workers = 10;
  JobStats balanced = BaseStats();  // 5 s over 10 tasks
  balanced.map_compute_max_sec = 0.5;
  JobStats skewed = BaseStats();
  skewed.map_compute_max_sec = 2.0;  // one task holds 2 of the 5 seconds
  EXPECT_NEAR(model.MapPhaseSeconds(skewed) -
                  model.MapPhaseSeconds(balanced),
              2.0 - 0.5, 1e-9);

  JobStats reduce_skewed = BaseStats();
  reduce_skewed.num_reduce_tasks = 10;
  reduce_skewed.reduce_compute_max_sec = 1.5;  // sum/parallelism = 0.2
  JobStats reduce_balanced = reduce_skewed;
  reduce_balanced.reduce_compute_max_sec = 0.2;
  EXPECT_NEAR(model.ReducePhaseSeconds(reduce_skewed) -
                  model.ReducePhaseSeconds(reduce_balanced),
              1.5 - 0.2, 1e-9);
}

TEST(CostModelTest, ZeroTasksZeroTime) {
  ClusterCostModel model;
  JobStats stats;
  EXPECT_DOUBLE_EQ(model.MapPhaseSeconds(stats), 0.0);
  EXPECT_DOUBLE_EQ(model.ReducePhaseSeconds(stats), 0.0);
  EXPECT_DOUBLE_EQ(model.EndToEndSeconds(stats), 0.0);
}

}  // namespace
}  // namespace csod::mr
