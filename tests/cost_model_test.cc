#include "mapreduce/cost_model.h"

#include <gtest/gtest.h>

namespace csod::mr {
namespace {

JobStats BaseStats() {
  JobStats stats;
  stats.num_map_tasks = 10;
  stats.num_reduce_tasks = 1;
  stats.map_compute_sec = 5.0;
  stats.reduce_compute_sec = 2.0;
  stats.input_bytes = 1'000'000'000;    // 1 GB
  stats.shuffle_bytes = 100'000'000;    // 100 MB
  return stats;
}

TEST(CostModelTest, Waves) {
  ClusterCostModel model;
  model.num_workers = 10;
  EXPECT_DOUBLE_EQ(model.Waves(0), 0.0);
  EXPECT_DOUBLE_EQ(model.Waves(1), 1.0);
  EXPECT_DOUBLE_EQ(model.Waves(10), 1.0);
  EXPECT_DOUBLE_EQ(model.Waves(11), 2.0);
  EXPECT_DOUBLE_EQ(model.Waves(25), 3.0);
}

TEST(CostModelTest, EndToEndIsSumOfPhases) {
  ClusterCostModel model;
  JobStats stats = BaseStats();
  EXPECT_DOUBLE_EQ(
      model.EndToEndSeconds(stats),
      model.MapPhaseSeconds(stats) + model.ReducePhaseSeconds(stats));
}

TEST(CostModelTest, ShuffleTimeFromBandwidth) {
  ClusterCostModel model;
  model.network_bandwidth_bytes_per_sec = 125e6;  // 1 Gbps
  JobStats stats = BaseStats();
  EXPECT_NEAR(model.ShuffleSeconds(stats), 0.8, 1e-9);  // 100MB / 125MB/s
}

TEST(CostModelTest, MoreShuffleBytesSlower) {
  ClusterCostModel model;
  JobStats small = BaseStats();
  JobStats big = BaseStats();
  big.shuffle_bytes *= 100;
  EXPECT_LT(model.EndToEndSeconds(small), model.EndToEndSeconds(big));
  EXPECT_LT(model.ReducePhaseSeconds(small), model.ReducePhaseSeconds(big));
}

TEST(CostModelTest, MoreComputeSlower) {
  ClusterCostModel model;
  JobStats fast = BaseStats();
  JobStats slow = BaseStats();
  slow.reduce_compute_sec += 50.0;
  EXPECT_LT(model.EndToEndSeconds(fast), model.EndToEndSeconds(slow));
}

TEST(CostModelTest, ComputeScaleApplied) {
  ClusterCostModel base;
  ClusterCostModel scaled = base;
  scaled.compute_scale = 2.0;
  JobStats stats = BaseStats();
  stats.input_bytes = 0;
  stats.shuffle_bytes = 0;
  const double base_map = base.MapPhaseSeconds(stats);
  const double scaled_map = scaled.MapPhaseSeconds(stats);
  // Doubling compute scale doubles the compute share (overhead unchanged).
  EXPECT_NEAR(scaled_map - base_map, stats.map_compute_sec / 10.0, 1e-9);
}

TEST(CostModelTest, MoreWorkersFasterMapPhase) {
  ClusterCostModel few;
  few.num_workers = 2;
  ClusterCostModel many;
  many.num_workers = 10;
  JobStats stats = BaseStats();
  EXPECT_GT(few.MapPhaseSeconds(stats), many.MapPhaseSeconds(stats));
}

TEST(CostModelTest, ZeroTasksZeroTime) {
  ClusterCostModel model;
  JobStats stats;
  EXPECT_DOUBLE_EQ(model.MapPhaseSeconds(stats), 0.0);
  EXPECT_DOUBLE_EQ(model.ReducePhaseSeconds(stats), 0.0);
  EXPECT_DOUBLE_EQ(model.EndToEndSeconds(stats), 0.0);
}

}  // namespace
}  // namespace csod::mr
