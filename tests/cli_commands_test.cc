#include "tools/cli_commands.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace csod::tools {
namespace {

// Unique temp path per test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(std::string(::testing::TempDir()) + "/csod_" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

  void Write(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

 private:
  std::string path_;
};

TEST(CliGenerateTest, WritesLoadableFile) {
  TempFile file("generate.txt");
  GenerateOptions options;
  options.n = 300;
  options.sparsity = 10;
  options.num_nodes = 4;
  options.seed = 3;
  auto written = WriteSyntheticEvents(file.path(), options);
  ASSERT_TRUE(written.ok());
  EXPECT_GT(written.Value(), 300u);  // Skewed split: >= one record per key.

  auto loaded = LoadEvents(file.path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.Value().splits.size(), 4u);
  EXPECT_LE(loaded.Value().key_space, 300u);
  EXPECT_EQ(loaded.Value().num_records, written.Value());
}

TEST(CliGenerateTest, RejectsBadPath) {
  GenerateOptions options;
  options.n = 100;
  options.sparsity = 5;
  EXPECT_FALSE(
      WriteSyntheticEvents("/nonexistent-dir/x/y.txt", options).ok());
}

TEST(CliLoadTest, ParsesCommentsAndRecords) {
  TempFile file("load.txt");
  file.Write("# comment\n0 3 1.5\n1 2 -4.0\n\n0 3 0.5\n");
  auto loaded = LoadEvents(file.path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.Value().num_records, 3u);
  EXPECT_EQ(loaded.Value().splits.size(), 2u);
  EXPECT_EQ(loaded.Value().key_space, 4u);
}

TEST(CliLoadTest, RejectsMalformedLine) {
  TempFile file("bad.txt");
  file.Write("0 1 2.0\nnot a record\n");
  auto loaded = LoadEvents(file.path());
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find(":2"), std::string::npos);
}

TEST(CliLoadTest, RejectsMissingAndEmpty) {
  EXPECT_FALSE(LoadEvents("/no/such/file").ok());
  TempFile file("empty.txt");
  file.Write("# only comments\n");
  EXPECT_FALSE(LoadEvents(file.path()).ok());
}

TEST(CliDetectTest, EndToEndFindsPlantedOutliers) {
  TempFile file("detect.txt");
  GenerateOptions gen;
  gen.n = 500;
  gen.sparsity = 12;
  gen.num_nodes = 4;
  gen.mode = 1800.0;
  gen.seed = 9;
  ASSERT_TRUE(WriteSyntheticEvents(file.path(), gen).ok());
  auto events = LoadEvents(file.path()).MoveValue();

  DetectOptions options;
  options.m = 200;
  options.k = 3;
  options.iterations = 20;
  options.n_override = 500;
  auto report = RunDetect(events, options);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report.Value().find("k-outliers via BOMP"), std::string::npos);
  EXPECT_NE(report.Value().find("communication:"), std::string::npos);

  // The detected keys must match the exact reference's keys.
  auto exact = RunExact(events, options.k);
  ASSERT_TRUE(exact.ok());
  // Both reports list "key <id>" lines; the top key must agree.
  const std::string detect_key = report.Value().substr(
      report.Value().find("key "), 15);
  EXPECT_NE(exact.Value().find(detect_key), std::string::npos);
}

TEST(CliTopKTest, ReportsTopKeys) {
  TempFile file("topk.txt");
  file.Write("0 0 5.0\n0 1 100.0\n1 2 60.0\n1 3 1.0\n");
  auto events = LoadEvents(file.path()).MoveValue();
  DetectOptions options;
  options.m = 4;
  options.k = 2;
  options.iterations = 4;
  auto report = RunTopK(events, options);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report.Value().find("top-k via CS recovery"), std::string::npos);
  EXPECT_NE(report.Value().find("key 1"), std::string::npos);
}

TEST(CliQueryTest, LoadsCsvAndExecutes) {
  TempFile file("table.csv");
  file.Write(
      "# comment\n"
      "node,Market,Score\n"
      "0,us,100\n"
      "0,de,100\n"
      "1,us,100\n"
      "1,de,100\n"
      "1,jp,100\n"
      "0,jp,-50000\n");
  auto table = LoadCsvTable(file.path());
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.Value().columns,
            (std::vector<std::string>{"Market", "Score"}));
  EXPECT_EQ(table.Value().node_rows.size(), 2u);

  DetectOptions options;
  options.m = 3;
  options.iterations = 3;
  auto report = RunQuery(
      table.Value(),
      "SELECT Outlier 1 SUM(Score), Market FROM t GROUP BY Market",
      options);
  ASSERT_TRUE(report.ok());
  // The broken market tops the answer with its exact aggregate. (At
  // M = N the tiny system is fully determined, so the value is exact;
  // the mode is ambiguous on 3 keys and not asserted.)
  EXPECT_NE(report.Value().find("jp"), std::string::npos);
  EXPECT_NE(report.Value().find("-49900.000"), std::string::npos);
}

TEST(CliQueryTest, CsvErrors) {
  EXPECT_FALSE(LoadCsvTable("/no/such/table.csv").ok());

  TempFile no_node("no_node.csv");
  no_node.Write("a,b\n1,2\n");
  EXPECT_FALSE(LoadCsvTable(no_node.path()).ok());

  TempFile bad_arity("bad_arity.csv");
  bad_arity.Write("node,a\n0,1,2\n");
  EXPECT_FALSE(LoadCsvTable(bad_arity.path()).ok());

  TempFile header_only("header_only.csv");
  header_only.Write("node,a\n");
  EXPECT_FALSE(LoadCsvTable(header_only.path()).ok());
}

TEST(CliQueryTest, BadSqlSurfaces) {
  TempFile file("q.csv");
  file.Write("node,g,Score\n0,x,1\n");
  auto table = LoadCsvTable(file.path());
  ASSERT_TRUE(table.ok());
  DetectOptions options;
  EXPECT_FALSE(RunQuery(table.Value(), "not sql at all", options).ok());
}

TEST(CliServeTest, ReplaysFileAndReportsWindowOutliers) {
  // Key 3 spikes in every record chunk, so it dominates whatever window
  // the replay ends on.
  TempFile file("serve.txt");
  std::string records;
  for (int i = 0; i < 64; ++i) {
    records += "0 " + std::to_string(i % 8) + " 10.0\n";
    records += "1 3 5000.0\n";
  }
  file.Write(records);
  auto events = LoadEvents(file.path()).MoveValue();

  ServeOptions options;
  options.m = 8;
  options.k = 1;
  options.iterations = 4;
  options.window_epochs = 2;
  options.epochs = 4;
  options.num_shards = 4;
  options.batch_events = 16;
  auto report = RunServe(events, options);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report.Value().find("replayed 128 events as 4 epochs"),
            std::string::npos);
  EXPECT_NE(report.Value().find("snapshot: v4"), std::string::npos);
  EXPECT_NE(report.Value().find("staleness 1 epoch(s)"), std::string::npos);
  EXPECT_NE(report.Value().find("window k-outliers via BOMP"),
            std::string::npos);
  EXPECT_NE(report.Value().find("key 3"), std::string::npos);
}

TEST(CliServeTest, ValidatesOptions) {
  TempFile file("serve_bad.txt");
  file.Write("0 1 2.0\n");
  auto events = LoadEvents(file.path()).MoveValue();
  ServeOptions options;
  options.epochs = 0;
  EXPECT_FALSE(RunServe(events, options).ok());
  options.epochs = 2;
  options.batch_events = 0;
  EXPECT_FALSE(RunServe(events, options).ok());
}

TEST(CliStreamDemoTest, SurfacesPlantedHotKey) {
  StreamDemoOptions options;
  options.n = 300;
  options.mode = 100.0;
  options.m = 60;
  options.k = 1;
  options.iterations = 6;
  options.window_epochs = 2;
  options.epochs = 3;
  options.num_shards = 4;
  options.events_per_epoch = 600;
  auto report = RunStreamDemo(options);
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report.Value().find("stream demo: N=300"), std::string::npos);
  EXPECT_NE(report.Value().find("events/sec"), std::string::npos);
  EXPECT_NE(report.Value().find("window top-k via CS recovery"),
            std::string::npos);
  // The planted hot key (n / 3 = 100) tops the recovered window.
  EXPECT_NE(report.Value().find("key 100"), std::string::npos);
}

TEST(CliExactTest, CentralizedReference) {
  TempFile file("exact.txt");
  file.Write("0 0 10.0\n0 1 10.0\n1 2 10.0\n1 3 500.0\n0 3 -200.0\n");
  auto events = LoadEvents(file.path()).MoveValue();
  auto report = RunExact(events, 1);
  ASSERT_TRUE(report.ok());
  // Global: {10, 10, 10, 300}; mode 10; outlier = key 3.
  EXPECT_NE(report.Value().find("key 3"), std::string::npos);
}

}  // namespace
}  // namespace csod::tools
