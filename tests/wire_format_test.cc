#include "dist/wire_format.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace csod::dist {
namespace {

TEST(WireFormatTest, MeasurementRoundTrip) {
  const std::vector<double> y = {1.5, -2.25, 0.0, 1e300, -1e-300};
  const std::string bytes = EncodeMeasurement(y).Value();
  EXPECT_EQ(bytes.size(), MeasurementWireSize(y.size()));
  auto decoded = DecodeMeasurement(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.Value(), y);
}

TEST(WireFormatTest, EmptyMeasurement) {
  const std::string bytes = EncodeMeasurement({}).Value();
  auto decoded = DecodeMeasurement(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.Value().empty());
}

TEST(WireFormatTest, KeyValueRoundTrip) {
  cs::SparseSlice slice;
  slice.indices = {0, 42, 4294967295u};
  slice.values = {3.25, -7.0, 1.0};
  auto encoded = EncodeKeyValues(slice);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded.Value().size(), KeyValueWireSize(3));
  auto decoded = DecodeKeyValues(encoded.Value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.Value().indices, slice.indices);
  EXPECT_EQ(decoded.Value().values, slice.values);
}

TEST(WireFormatTest, KeyTooLargeRejected) {
  cs::SparseSlice slice;
  slice.indices = {uint64_t{1} << 33};
  slice.values = {1.0};
  auto encoded = EncodeKeyValues(slice);
  EXPECT_FALSE(encoded.ok());
  // InvalidArgument, not OutOfRange: a key past the 32-bit wire key space
  // is a caller bug (wrong dictionary), not an iteration boundary — and
  // callers must be able to distinguish it from retryable range errors.
  EXPECT_EQ(encoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireFormatTest, MismatchedSliceRejected) {
  cs::SparseSlice slice;
  slice.indices = {1, 2};
  slice.values = {1.0};
  EXPECT_FALSE(EncodeKeyValues(slice).ok());
}

TEST(WireFormatTest, CorruptionDetected) {
  const std::string bytes = EncodeMeasurement({1.0, 2.0, 3.0}).Value();
  // Flip one payload byte: checksum must catch it.
  for (size_t pos : {size_t{13}, size_t{20}, bytes.size() - 1}) {
    std::string corrupted = bytes;
    corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x40);
    EXPECT_FALSE(DecodeMeasurement(corrupted).ok()) << "pos " << pos;
  }
}

TEST(WireFormatTest, TruncationDetected) {
  const std::string bytes = EncodeMeasurement({1.0, 2.0}).Value();
  EXPECT_FALSE(DecodeMeasurement(bytes.substr(0, bytes.size() - 1)).ok());
  EXPECT_FALSE(DecodeMeasurement(bytes.substr(0, 5)).ok());
  EXPECT_FALSE(DecodeMeasurement("").ok());
}

TEST(WireFormatTest, KindConfusionRejected) {
  cs::SparseSlice slice;
  slice.indices = {1};
  slice.values = {2.0};
  auto kv = EncodeKeyValues(slice);
  ASSERT_TRUE(kv.ok());
  EXPECT_FALSE(DecodeMeasurement(kv.Value()).ok());
  EXPECT_FALSE(DecodeKeyValues(EncodeMeasurement({1.0}).Value()).ok());
}

TEST(WireFormatTest, BadMagicRejected) {
  std::string bytes = EncodeMeasurement({1.0}).Value();
  bytes[0] = 'X';
  EXPECT_FALSE(DecodeMeasurement(bytes).ok());
}

TEST(WireFormatTest, FuzzedGarbageNeverCrashesDecoder) {
  // Seeded fuzz: random byte strings and randomly mutated valid messages
  // must be rejected cleanly (no crash, no bogus acceptance of mutants).
  Rng rng(0xf22d);
  const std::string valid =
      EncodeMeasurement({1.0, -2.0, 3.5, 0.25}).Value();
  for (int trial = 0; trial < 2000; ++trial) {
    std::string bytes;
    if (trial % 2 == 0) {
      // Pure garbage of random length.
      const size_t len = rng.NextBounded(64);
      bytes.resize(len);
      for (char& ch : bytes) {
        ch = static_cast<char>(rng.NextU64() & 0xff);
      }
    } else {
      // Valid message with 1-4 random byte flips.
      bytes = valid;
      const size_t flips = 1 + rng.NextBounded(4);
      for (size_t f = 0; f < flips; ++f) {
        const size_t pos = rng.NextBounded(bytes.size());
        bytes[pos] = static_cast<char>(bytes[pos] ^
                                       (1 + (rng.NextU64() & 0xff)));
      }
      if (bytes == valid) continue;  // All flips were identity XORs.
    }
    auto measurement = DecodeMeasurement(bytes);
    auto kv = DecodeKeyValues(bytes);
    EXPECT_FALSE(measurement.ok() && kv.ok());  // Can't be both kinds.
    if (trial % 2 == 1) {
      // A mutated valid message must never decode successfully.
      EXPECT_FALSE(measurement.ok()) << "trial " << trial;
    }
  }
}

TEST(WireFormatTest, WireSizesMatchIdealizedAccountingPlusHeader) {
  // Header + checksum are a fixed 21 bytes; payload matches the paper's
  // per-tuple accounting (8B measurements, 12B kv pairs).
  EXPECT_EQ(MeasurementWireSize(100) - MeasurementWireSize(0), 100u * 8);
  EXPECT_EQ(KeyValueWireSize(100) - KeyValueWireSize(0), 100u * 12);
}

}  // namespace
}  // namespace csod::dist
