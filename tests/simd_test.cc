#include "common/simd.h"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"

namespace csod::simd {
namespace {

// Restores the dispatch level a test overrode, even on assertion failure.
class ScopedLevel {
 public:
  explicit ScopedLevel(Level level) : previous_(SetLevelForTesting(level)) {}
  ~ScopedLevel() { SetLevelForTesting(previous_); }

 private:
  Level previous_;
};

std::vector<double> RandomVector(size_t n, uint64_t seed) {
  std::vector<double> v(n);
  Rng rng(seed);
  for (double& x : v) x = rng.NextGaussian();
  return v;
}

// The canonical summation tree, written out longhand: lane l sums elements
// at positions i ≡ l (mod 8); lanes fold pairwise.
double ReferenceLaneDot(const double* a, const double* b, size_t n) {
  double lane[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t i = 0; i < n; ++i) lane[i % 8] += a[i] * b[i];
  return ((lane[0] + lane[1]) + (lane[2] + lane[3])) +
         ((lane[4] + lane[5]) + (lane[6] + lane[7]));
}

// Sizes that exercise empty input, sub-lane tails, exact multiples, and a
// long stream.
const size_t kSizes[] = {0, 1, 3, 7, 8, 9, 13, 16, 31, 64, 100, 257};

TEST(SimdTest, DotMatchesCanonicalLaneSplit) {
  for (size_t n : kSizes) {
    const auto a = RandomVector(n, 11);
    const auto b = RandomVector(n, 22);
    for (Level level : {Level::kPortable, Level::kAvx2}) {
      ScopedLevel scoped(level);
      EXPECT_EQ(Dot(a.data(), b.data(), n),
                ReferenceLaneDot(a.data(), b.data(), n))
          << "n=" << n << " level=" << LevelName(ActiveLevel());
    }
  }
}

TEST(SimdTest, Avx2AndPortableAreBitIdentical) {
  if (!Avx2Supported()) GTEST_SKIP() << "CPU lacks AVX2";
  for (size_t n : kSizes) {
    const auto a = RandomVector(n, 5);
    const auto b = RandomVector(n, 6);
    const auto c = RandomVector(n, 7);
    const auto d = RandomVector(n, 8);
    const auto r = RandomVector(n, 9);

    double portable_dot, avx2_dot;
    double portable_dot4[4], avx2_dot4[4];
    std::vector<double> portable_axpy, avx2_axpy;
    std::vector<double> portable_axpy4, avx2_axpy4;
    std::vector<double> portable_add4, avx2_add4;
    auto run_all = [&](double* dot, double dot4[4], std::vector<double>* axpy,
                       std::vector<double>* axpy4, std::vector<double>* add4) {
      *dot = Dot(a.data(), r.data(), n);
      Dot4(a.data(), b.data(), c.data(), d.data(), r.data(), n, dot4);
      *axpy = RandomVector(n, 33);
      Axpy(axpy->data(), a.data(), 1.7, n);
      Scale(axpy->data(), 0.3, n);
      Add(axpy->data(), b.data(), n);
      *axpy4 = RandomVector(n, 44);
      Axpy4(axpy4->data(), a.data(), 0.5, b.data(), -1.25, c.data(), 2.0,
            d.data(), -0.75, n);
      const double* cols8[8] = {a.data(), b.data(), c.data(), d.data(),
                                r.data(), a.data(), b.data(), c.data()};
      const double xs8[8] = {1.0, -2.0, 0.5, 3.0, -0.125, 2.25, -1.0, 0.75};
      Axpy8(axpy4->data(), cols8, xs8, n);
      *add4 = RandomVector(n, 55);
      Add4(add4->data(), a.data(), b.data(), c.data(), d.data(), n);
    };
    {
      ScopedLevel scoped(Level::kPortable);
      run_all(&portable_dot, portable_dot4, &portable_axpy, &portable_axpy4,
              &portable_add4);
    }
    {
      ScopedLevel scoped(Level::kAvx2);
      ASSERT_EQ(ActiveLevel(), Level::kAvx2);
      run_all(&avx2_dot, avx2_dot4, &avx2_axpy, &avx2_axpy4, &avx2_add4);
    }
    EXPECT_EQ(portable_dot, avx2_dot) << "n=" << n;
    for (size_t k = 0; k < 4; ++k) {
      EXPECT_EQ(portable_dot4[k], avx2_dot4[k]) << "n=" << n << " k=" << k;
    }
    EXPECT_EQ(portable_axpy, avx2_axpy) << "n=" << n;
    EXPECT_EQ(portable_axpy4, avx2_axpy4) << "n=" << n;
    EXPECT_EQ(portable_add4, avx2_add4) << "n=" << n;
  }
}

TEST(SimdTest, FusedVariantsMatchSequentialCallsBitwise) {
  for (Level level : {Level::kPortable, Level::kAvx2}) {
    ScopedLevel scoped(level);
    for (size_t n : kSizes) {
      const auto c0 = RandomVector(n, 1);
      const auto c1 = RandomVector(n, 2);
      const auto c2 = RandomVector(n, 3);
      const auto c3 = RandomVector(n, 4);
      const auto r = RandomVector(n, 5);

      double fused[4];
      Dot4(c0.data(), c1.data(), c2.data(), c3.data(), r.data(), n, fused);
      EXPECT_EQ(fused[0], Dot(c0.data(), r.data(), n));
      EXPECT_EQ(fused[1], Dot(c1.data(), r.data(), n));
      EXPECT_EQ(fused[2], Dot(c2.data(), r.data(), n));
      EXPECT_EQ(fused[3], Dot(c3.data(), r.data(), n));

      std::vector<double> acc_fused = RandomVector(n, 6);
      std::vector<double> acc_seq = acc_fused;
      Axpy4(acc_fused.data(), c0.data(), 0.5, c1.data(), -1.5, c2.data(), 2.5,
            c3.data(), -0.25, n);
      Axpy(acc_seq.data(), c0.data(), 0.5, n);
      Axpy(acc_seq.data(), c1.data(), -1.5, n);
      Axpy(acc_seq.data(), c2.data(), 2.5, n);
      Axpy(acc_seq.data(), c3.data(), -0.25, n);
      EXPECT_EQ(acc_fused, acc_seq) << "n=" << n;

      const auto c4 = RandomVector(n, 8);
      const auto c5 = RandomVector(n, 9);
      const auto c6 = RandomVector(n, 10);
      const auto c7 = RandomVector(n, 11);
      const double* cols8[8] = {c0.data(), c1.data(), c2.data(), c3.data(),
                                c4.data(), c5.data(), c6.data(), c7.data()};
      const double xs8[8] = {0.5, -1.5, 2.5, -0.25, 1.75, -3.0, 0.125, 4.5};
      std::vector<double> acc8_fused = RandomVector(n, 12);
      std::vector<double> acc8_seq = acc8_fused;
      Axpy8(acc8_fused.data(), cols8, xs8, n);
      for (size_t k = 0; k < 8; ++k) {
        Axpy(acc8_seq.data(), cols8[k], xs8[k], n);
      }
      EXPECT_EQ(acc8_fused, acc8_seq) << "n=" << n;

      std::vector<double> add_fused = RandomVector(n, 7);
      std::vector<double> add_seq = add_fused;
      Add4(add_fused.data(), c0.data(), c1.data(), c2.data(), c3.data(), n);
      Add(add_seq.data(), c0.data(), n);
      Add(add_seq.data(), c1.data(), n);
      Add(add_seq.data(), c2.data(), n);
      Add(add_seq.data(), c3.data(), n);
      EXPECT_EQ(add_fused, add_seq) << "n=" << n;
    }
  }
}

TEST(SimdTest, ElementwiseKernelsMatchScalarReference) {
  const size_t n = 37;
  const auto col = RandomVector(n, 12);
  for (Level level : {Level::kPortable, Level::kAvx2}) {
    ScopedLevel scoped(level);
    std::vector<double> acc = RandomVector(n, 13);
    std::vector<double> expected = acc;
    Axpy(acc.data(), col.data(), 1.25, n);
    for (size_t i = 0; i < n; ++i) expected[i] += col[i] * 1.25;
    EXPECT_EQ(acc, expected);

    Add(acc.data(), col.data(), n);
    for (size_t i = 0; i < n; ++i) expected[i] += col[i];
    EXPECT_EQ(acc, expected);

    Scale(acc.data(), -0.5, n);
    for (size_t i = 0; i < n; ++i) expected[i] *= -0.5;
    EXPECT_EQ(acc, expected);
  }
}

TEST(SimdTest, SetLevelForTestingRoundTrips) {
  const Level original = ActiveLevel();
  const Level previous = SetLevelForTesting(Level::kPortable);
  EXPECT_EQ(previous, original);
  EXPECT_EQ(ActiveLevel(), Level::kPortable);
  SetLevelForTesting(original);
  EXPECT_EQ(ActiveLevel(), original);
}

TEST(SimdTest, Avx2RequestClampsToPortableWhenUnsupported) {
  const Level original = ActiveLevel();
  SetLevelForTesting(Level::kAvx2);
  if (Avx2Supported()) {
    EXPECT_EQ(ActiveLevel(), Level::kAvx2);
  } else {
    EXPECT_EQ(ActiveLevel(), Level::kPortable);
  }
  SetLevelForTesting(original);
}

TEST(SimdTest, LevelNames) {
  EXPECT_STREQ(LevelName(Level::kPortable), "portable");
  EXPECT_STREQ(LevelName(Level::kAvx2), "avx2");
}

}  // namespace
}  // namespace csod::simd
