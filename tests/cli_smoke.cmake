# End-to-end smoke test of the actual `csod` CLI binary: generate a
# workload file, detect outliers over it, and cross-check against the
# exact reference. Invoked by CTest with -DCSOD_CLI=<path-to-binary>.

set(events "${CMAKE_CURRENT_BINARY_DIR}/cli_smoke_events.txt")

execute_process(
  COMMAND "${CSOD_CLI}" generate --out=${events} --n=800 --sparsity=12
          --nodes=4 --seed=5
  RESULT_VARIABLE gen_result OUTPUT_VARIABLE gen_out)
if(NOT gen_result EQUAL 0)
  message(FATAL_ERROR "csod generate failed: ${gen_out}")
endif()

execute_process(
  COMMAND "${CSOD_CLI}" detect --in=${events} --m=250 --k=3 --iterations=20
  RESULT_VARIABLE detect_result OUTPUT_VARIABLE detect_out)
if(NOT detect_result EQUAL 0)
  message(FATAL_ERROR "csod detect failed: ${detect_out}")
endif()
if(NOT detect_out MATCHES "k-outliers via BOMP")
  message(FATAL_ERROR "detect output missing header: ${detect_out}")
endif()

execute_process(
  COMMAND "${CSOD_CLI}" exact --in=${events} --k=3
  RESULT_VARIABLE exact_result OUTPUT_VARIABLE exact_out)
if(NOT exact_result EQUAL 0)
  message(FATAL_ERROR "csod exact failed: ${exact_out}")
endif()

# The top detected key must appear in the exact reference output.
string(REGEX MATCH "key [0-9]+" top_key "${detect_out}")
if(NOT exact_out MATCHES "${top_key}")
  message(FATAL_ERROR
          "detect top key '${top_key}' not in exact reference:\n${exact_out}")
endif()

file(REMOVE "${events}")
message(STATUS "cli smoke test passed (${top_key})")
