# End-to-end smoke test of the actual `csod` CLI binary: generate a
# workload file, detect outliers over it, and cross-check against the
# exact reference. Invoked by CTest with -DCSOD_CLI=<path-to-binary>.

set(events "${CMAKE_CURRENT_BINARY_DIR}/cli_smoke_events.txt")

execute_process(
  COMMAND "${CSOD_CLI}" generate --out=${events} --n=800 --sparsity=12
          --nodes=4 --seed=5
  RESULT_VARIABLE gen_result OUTPUT_VARIABLE gen_out)
if(NOT gen_result EQUAL 0)
  message(FATAL_ERROR "csod generate failed: ${gen_out}")
endif()

execute_process(
  COMMAND "${CSOD_CLI}" detect --in=${events} --m=250 --k=3 --iterations=20
  RESULT_VARIABLE detect_result OUTPUT_VARIABLE detect_out)
if(NOT detect_result EQUAL 0)
  message(FATAL_ERROR "csod detect failed: ${detect_out}")
endif()
if(NOT detect_out MATCHES "k-outliers via BOMP")
  message(FATAL_ERROR "detect output missing header: ${detect_out}")
endif()

execute_process(
  COMMAND "${CSOD_CLI}" exact --in=${events} --k=3
  RESULT_VARIABLE exact_result OUTPUT_VARIABLE exact_out)
if(NOT exact_result EQUAL 0)
  message(FATAL_ERROR "csod exact failed: ${exact_out}")
endif()

# The top detected key must appear in the exact reference output.
string(REGEX MATCH "key [0-9]+" top_key "${detect_out}")
if(NOT exact_out MATCHES "${top_key}")
  message(FATAL_ERROR
          "detect top key '${top_key}' not in exact reference:\n${exact_out}")
endif()

# Alternate recovery engine: --solver=amp must run, report its provenance,
# and agree with the exact reference on the top key.
execute_process(
  COMMAND "${CSOD_CLI}" detect --in=${events} --m=250 --k=3 --iterations=20
          --solver=amp
  RESULT_VARIABLE amp_result OUTPUT_VARIABLE amp_out)
if(NOT amp_result EQUAL 0)
  message(FATAL_ERROR "csod detect --solver=amp failed: ${amp_out}")
endif()
if(NOT amp_out MATCHES "solver: amp")
  message(FATAL_ERROR "detect output missing solver provenance: ${amp_out}")
endif()
string(REGEX MATCH "key [0-9]+" amp_top_key "${amp_out}")
if(NOT exact_out MATCHES "${amp_top_key}")
  message(FATAL_ERROR
          "amp top key '${amp_top_key}' not in exact reference:\n${exact_out}")
endif()

# An unknown solver name must fail loudly, not fall back silently.
execute_process(
  COMMAND "${CSOD_CLI}" detect --in=${events} --solver=lasso
  RESULT_VARIABLE bad_solver_result OUTPUT_VARIABLE bad_solver_out
  ERROR_VARIABLE bad_solver_err)
if(bad_solver_result EQUAL 0)
  message(FATAL_ERROR "csod detect --solver=lasso unexpectedly succeeded")
endif()

# Streaming replay of the same file: must publish a snapshot and answer a
# window query, and the telemetry snapshot must land on disk.
set(telemetry "${CMAKE_CURRENT_BINARY_DIR}/cli_smoke_telemetry.json")
execute_process(
  COMMAND "${CSOD_CLI}" serve --in=${events} --m=250 --k=3 --iterations=20
          --epochs=4 --window=4 --shards=4 --telemetry-json=${telemetry}
  RESULT_VARIABLE serve_result OUTPUT_VARIABLE serve_out)
if(NOT serve_result EQUAL 0)
  message(FATAL_ERROR "csod serve failed: ${serve_out}")
endif()
if(NOT serve_out MATCHES "window k-outliers via BOMP")
  message(FATAL_ERROR "serve output missing header: ${serve_out}")
endif()
if(NOT serve_out MATCHES "staleness 1 epoch")
  message(FATAL_ERROR "serve output missing staleness: ${serve_out}")
endif()
if(NOT EXISTS "${telemetry}")
  message(FATAL_ERROR "serve did not write ${telemetry}")
endif()
# A full-file window must agree with the exact reference on the top key.
string(REGEX MATCH "key [0-9]+" serve_top_key "${serve_out}")
if(NOT exact_out MATCHES "${serve_top_key}")
  message(FATAL_ERROR
          "serve top key '${serve_top_key}' not in exact reference:"
          "\n${exact_out}")
endif()

# Self-generating stream demo with a concurrent analyst thread.
execute_process(
  COMMAND "${CSOD_CLI}" stream-demo --n=400 --m=100 --k=1 --iterations=8
          --epochs=3 --window=2 --shards=4 --events-per-epoch=800
  RESULT_VARIABLE demo_result OUTPUT_VARIABLE demo_out)
if(NOT demo_result EQUAL 0)
  message(FATAL_ERROR "csod stream-demo failed: ${demo_out}")
endif()
if(NOT demo_out MATCHES "window top-k via CS recovery")
  message(FATAL_ERROR "stream-demo output missing header: ${demo_out}")
endif()

# The usage text is generated from the subcommand table: every verb must be
# listed (a verb missing here means the table and dispatch diverged).
execute_process(
  COMMAND "${CSOD_CLI}" ERROR_VARIABLE usage_out RESULT_VARIABLE usage_result)
foreach(verb generate detect topk exact query serve stream-demo)
  if(NOT usage_out MATCHES "${verb}")
    message(FATAL_ERROR "usage text missing verb '${verb}':\n${usage_out}")
  endif()
endforeach()
if(NOT usage_out MATCHES "telemetry-json")
  message(FATAL_ERROR "usage text missing --telemetry-json:\n${usage_out}")
endif()

file(REMOVE "${events}" "${telemetry}")
message(STATUS "cli smoke test passed (${top_key})")
