#include "cs/omp.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "cs/measurement_matrix.h"
#include "la/vector_ops.h"

namespace csod::cs {
namespace {

// Builds an s-sparse vector with given support values.
std::vector<double> SparseVector(size_t n, const std::vector<size_t>& support,
                                 const std::vector<double>& values) {
  std::vector<double> x(n, 0.0);
  for (size_t i = 0; i < support.size(); ++i) x[support[i]] = values[i];
  return x;
}

TEST(OmpTest, RejectsBadInputs) {
  MeasurementMatrix matrix(8, 16, 1);
  MatrixDictionary dict(&matrix);
  OmpOptions options;
  options.max_iterations = 4;
  EXPECT_FALSE(RunOmp(dict, {1, 2, 3}, options).ok());  // wrong y size
  options.max_iterations = 0;
  std::vector<double> y(8, 1.0);
  EXPECT_FALSE(RunOmp(dict, y, options).ok());
}

TEST(OmpTest, ZeroMeasurementReturnsEmpty) {
  MeasurementMatrix matrix(8, 16, 1);
  MatrixDictionary dict(&matrix);
  OmpOptions options;
  options.max_iterations = 4;
  auto result = RunOmp(dict, std::vector<double>(8, 0.0), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.Value().selected.empty());
  EXPECT_EQ(result.Value().iterations, 0u);
}

TEST(OmpTest, RecoversOneSparseExactly) {
  const size_t n = 64;
  MeasurementMatrix matrix(16, n, 7);
  std::vector<double> x = SparseVector(n, {13}, {42.0});
  auto y = matrix.Multiply(x);
  ASSERT_TRUE(y.ok());

  MatrixDictionary dict(&matrix);
  OmpOptions options;
  options.max_iterations = 4;
  auto result = RunOmp(dict, y.Value(), options);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result.Value().selected.size(), 1u);
  EXPECT_EQ(result.Value().selected[0], 13u);
  EXPECT_NEAR(result.Value().coefficients[0], 42.0, 1e-8);
  EXPECT_LT(result.Value().final_residual_norm, 1e-6);
}

TEST(OmpTest, ResidualNormsNonIncreasing) {
  const size_t n = 128;
  MeasurementMatrix matrix(40, n, 3);
  Rng rng(5);
  std::vector<double> x(n, 0.0);
  for (int i = 0; i < 10; ++i) {
    x[rng.NextBounded(n)] = rng.NextGaussian() * 10.0;
  }
  auto y = matrix.Multiply(x);
  ASSERT_TRUE(y.ok());

  MatrixDictionary dict(&matrix);
  OmpOptions options;
  options.max_iterations = 20;
  options.stop_on_residual_stagnation = false;
  auto result = RunOmp(dict, y.Value(), options);
  ASSERT_TRUE(result.ok());
  const auto& norms = result.Value().residual_norms;
  for (size_t i = 1; i < norms.size(); ++i) {
    EXPECT_LE(norms[i], norms[i - 1] + 1e-9);
  }
}

TEST(OmpTest, HonorsIterationBudget) {
  const size_t n = 100;
  MeasurementMatrix matrix(30, n, 9);
  Rng rng(2);
  std::vector<double> x(n);
  for (double& v : x) v = rng.NextGaussian();  // Dense: never converges.
  auto y = matrix.Multiply(x);
  ASSERT_TRUE(y.ok());

  MatrixDictionary dict(&matrix);
  OmpOptions options;
  options.max_iterations = 5;
  options.stop_on_residual_stagnation = false;
  auto result = RunOmp(dict, y.Value(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.Value().iterations, 5u);
  EXPECT_LE(result.Value().selected.size(), 5u);
}

TEST(OmpTest, CallbackObservesEveryIteration) {
  const size_t n = 64;
  MeasurementMatrix matrix(24, n, 17);
  std::vector<double> x = SparseVector(n, {1, 2, 3}, {5.0, -4.0, 3.0});
  auto y = matrix.Multiply(x);
  ASSERT_TRUE(y.ok());

  MatrixDictionary dict(&matrix);
  OmpOptions options;
  options.max_iterations = 10;
  options.solve_coefficients_each_iteration = true;
  size_t calls = 0;
  options.iteration_callback = [&](const OmpIterationInfo& info) {
    ++calls;
    EXPECT_EQ(info.iteration, calls);
    ASSERT_NE(info.selected, nullptr);
    ASSERT_NE(info.coefficients, nullptr);
    EXPECT_EQ(info.selected->size(), calls);
    EXPECT_EQ(info.coefficients->size(), calls);
  };
  auto result = RunOmp(dict, y.Value(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(calls, result.Value().iterations);
}

TEST(OmpTest, NeverSelectsSameAtomTwice) {
  const size_t n = 50;
  MeasurementMatrix matrix(20, n, 23);
  Rng rng(4);
  std::vector<double> x(n);
  for (double& v : x) v = rng.NextGaussian();
  auto y = matrix.Multiply(x);
  ASSERT_TRUE(y.ok());

  MatrixDictionary dict(&matrix);
  OmpOptions options;
  options.max_iterations = 20;
  options.stop_on_residual_stagnation = false;
  auto result = RunOmp(dict, y.Value(), options);
  ASSERT_TRUE(result.ok());
  std::set<size_t> unique(result.Value().selected.begin(),
                          result.Value().selected.end());
  EXPECT_EQ(unique.size(), result.Value().selected.size());
}

// A pathological dictionary whose atoms are all identical: after the first
// selection every remaining atom is linearly dependent, so OMP must stop
// via the Section-5 stagnation rule instead of looping.
class ConstantDictionary final : public Dictionary {
 public:
  ConstantDictionary(size_t num_atoms, size_t m)
      : num_atoms_(num_atoms), atom_(m, 1.0) {}
  size_t num_atoms() const override { return num_atoms_; }
  size_t atom_length() const override { return atom_.size(); }
  void FillAtom(size_t, double* out) const override {
    for (size_t i = 0; i < atom_.size(); ++i) out[i] = atom_[i];
  }
  Result<std::vector<double>> Correlate(
      const std::vector<double>& r) const override {
    double acc = 0.0;
    for (double v : r) acc += v;
    return std::vector<double>(num_atoms_, acc);
  }
  Result<std::vector<double>> MultiplyDense(
      const std::vector<double>& z) const override {
    double total = 0.0;
    for (double v : z) total += v;
    return std::vector<double>(atom_.size(), total);
  }

 private:
  size_t num_atoms_;
  std::vector<double> atom_;
};

TEST(OmpTest, TerminatesOnDegenerateDictionary) {
  ConstantDictionary dict(10, 4);
  std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  OmpOptions options;
  options.max_iterations = 8;
  auto result = RunOmp(dict, y, options);
  ASSERT_TRUE(result.ok());
  // One useful atom; afterwards every remaining atom lies in the selected
  // span, its correlation with the residual is zero, and the loop must
  // terminate instead of spinning (far below the iteration budget).
  EXPECT_EQ(result.Value().selected.size(), 1u);
  EXPECT_EQ(result.Value().iterations, 1u);
  EXPECT_GT(result.Value().final_residual_norm, 0.0);
}

TEST(OmpTest, NoisyMeasurementTerminatesCleanly) {
  // With additive noise, exact recovery is impossible; OMP must still
  // terminate within the budget and return the dominant atoms first.
  const size_t n = 120;
  MeasurementMatrix matrix(40, n, 29);
  std::vector<double> x(n, 0.0);
  x[11] = 100.0;
  x[77] = -80.0;
  auto y = matrix.Multiply(x).MoveValue();
  Rng noise_rng(5);
  for (double& v : y) v += noise_rng.NextGaussian() * 0.5;

  MatrixDictionary dict(&matrix);
  OmpOptions options;
  options.max_iterations = 30;
  auto result = RunOmp(dict, y, options);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result.Value().selected.size(), 2u);
  EXPECT_EQ(result.Value().selected[0], 11u);
  EXPECT_EQ(result.Value().selected[1], 77u);
  EXPECT_LE(result.Value().iterations, 30u);
}

// Property sweep: exact recovery of s-sparse vectors when M is generous
// (M = 4 s log N — comfortably above the Theorem 1 scaling).
class OmpRecoveryTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {};

TEST_P(OmpRecoveryTest, ExactRecoveryWithGenerousM) {
  const auto [n, s, seed] = GetParam();
  const size_t m = std::min<size_t>(
      n, static_cast<size_t>(4.0 * s * std::log(static_cast<double>(n))) + 8);
  MeasurementMatrix matrix(m, n, seed);
  Rng rng(seed * 31 + 1);
  std::vector<size_t> support;
  std::set<size_t> used;
  while (support.size() < s) {
    const size_t idx = rng.NextBounded(n);
    if (used.insert(idx).second) support.push_back(idx);
  }
  std::vector<double> x(n, 0.0);
  for (size_t idx : support) {
    x[idx] = (rng.NextDouble() + 0.5) * ((rng.NextU64() & 1) ? 1.0 : -1.0) *
             100.0;
  }
  auto y = matrix.Multiply(x);
  ASSERT_TRUE(y.ok());

  MatrixDictionary dict(&matrix);
  OmpOptions options;
  options.max_iterations = s + 2;
  auto result = RunOmp(dict, y.Value(), options);
  ASSERT_TRUE(result.ok());

  // Recovered support must equal the planted support, values must match.
  std::set<size_t> planted(support.begin(), support.end());
  std::set<size_t> recovered(result.Value().selected.begin(),
                             result.Value().selected.end());
  EXPECT_EQ(planted, recovered);
  for (size_t i = 0; i < result.Value().selected.size(); ++i) {
    EXPECT_NEAR(result.Value().coefficients[i],
                x[result.Value().selected[i]], 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, OmpRecoveryTest,
    ::testing::Values(std::make_tuple(100, 2, 1), std::make_tuple(100, 5, 2),
                      std::make_tuple(256, 8, 3), std::make_tuple(256, 16, 4),
                      std::make_tuple(512, 10, 5),
                      std::make_tuple(1000, 20, 6)));

}  // namespace
}  // namespace csod::cs
