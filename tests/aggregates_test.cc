#include "outlier/aggregates.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "cs/measurement_matrix.h"
#include "workload/generators.h"

namespace csod::outlier {
namespace {

// Exact reference aggregates on a dense vector.
double ExactMean(const std::vector<double>& x) {
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

double ExactPercentile(std::vector<double> x, double p) {
  std::sort(x.begin(), x.end());
  size_t rank = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(p / 100.0 * x.size())));
  rank = std::min(rank, x.size());
  return x[rank - 1];
}

cs::BompResult MakeRecovery(double mode,
                            std::vector<std::pair<size_t, double>> entries) {
  cs::BompResult r;
  r.mode = mode;
  for (auto& [index, value] : entries) {
    r.entries.push_back(cs::RecoveredEntry{index, value});
  }
  return r;
}

TEST(AggregatesTest, SumAndMean) {
  // Implicit vector of 10 values: eight 5s, one 25, one -15. Sum = 50.
  cs::BompResult r = MakeRecovery(5.0, {{0, 25.0}, {3, -15.0}});
  EXPECT_DOUBLE_EQ(RecoveredSum(r, 10), 50.0);
  EXPECT_DOUBLE_EQ(RecoveredMean(r, 10).Value(), 5.0);
}

TEST(AggregatesTest, MeanValidation) {
  cs::BompResult r = MakeRecovery(1.0, {});
  EXPECT_FALSE(RecoveredMean(r, 0).ok());
  EXPECT_FALSE(RecoveredVariance(r, 0).ok());
}

TEST(AggregatesTest, VarianceMatchesDense) {
  cs::BompResult r = MakeRecovery(10.0, {{1, 40.0}, {5, -20.0}});
  const size_t n = 8;
  std::vector<double> dense(n, 10.0);
  dense[1] = 40.0;
  dense[5] = -20.0;
  const double mean = ExactMean(dense);
  double var = 0.0;
  for (double v : dense) var += (v - mean) * (v - mean);
  var /= n;
  EXPECT_NEAR(RecoveredVariance(r, n).Value(), var, 1e-12);
}

TEST(AggregatesTest, PercentileValidation) {
  cs::BompResult r = MakeRecovery(1.0, {});
  EXPECT_FALSE(RecoveredPercentile(r, 0, 50).ok());
  EXPECT_FALSE(RecoveredPercentile(r, 10, -1).ok());
  EXPECT_FALSE(RecoveredPercentile(r, 10, 101).ok());
  cs::BompResult too_many = MakeRecovery(0.0, {{0, 1.0}, {1, 2.0}});
  EXPECT_FALSE(RecoveredPercentile(too_many, 1, 50).ok());
}

TEST(AggregatesTest, PercentileMatchesDenseReference) {
  const size_t n = 11;
  cs::BompResult r =
      MakeRecovery(100.0, {{0, 5.0}, {1, 50.0}, {2, 300.0}, {3, 900.0}});
  std::vector<double> dense(n, 100.0);
  dense[0] = 5.0;
  dense[1] = 50.0;
  dense[2] = 300.0;
  dense[3] = 900.0;
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0}) {
    EXPECT_DOUBLE_EQ(RecoveredPercentile(r, n, p).Value(),
                     ExactPercentile(dense, p))
        << "p = " << p;
  }
}

TEST(AggregatesTest, MedianOfModeDominatedIsMode) {
  cs::BompResult r = MakeRecovery(1800.0, {{7, 90000.0}, {13, -40000.0}});
  EXPECT_DOUBLE_EQ(RecoveredPercentile(r, 1000, 50).Value(), 1800.0);
}

TEST(AggregatesTest, EndToEndFromActualRecovery) {
  // Aggregates computed from a real BOMP recovery match the dense truth.
  workload::MajorityDominatedOptions gen;
  gen.n = 400;
  gen.sparsity = 10;
  gen.seed = 77;
  auto x = workload::GenerateMajorityDominated(gen).MoveValue();

  cs::MeasurementMatrix matrix(140, gen.n, 5);
  auto y = matrix.Multiply(x).MoveValue();
  cs::BompOptions options;
  options.max_iterations = 16;
  auto recovery = cs::RunBomp(matrix, y, options).MoveValue();

  EXPECT_NEAR(RecoveredMean(recovery, gen.n).Value(), ExactMean(x),
              std::fabs(ExactMean(x)) * 1e-6);
  for (double p : {1.0, 50.0, 99.0}) {
    EXPECT_NEAR(RecoveredPercentile(recovery, gen.n, p).Value(),
                ExactPercentile(x, p), 1e-6)
        << "p = " << p;
  }
}

}  // namespace
}  // namespace csod::outlier
