#include "mapreduce/jobs.h"

#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "dist/comm.h"
#include "outlier/metrics.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

namespace csod::mr {
namespace {

struct JobSetup {
  std::vector<double> global;
  std::vector<std::vector<ScoreEvent>> splits;
};

JobSetup MakeSetup(size_t n, size_t s, size_t num_nodes,
                   size_t events_per_key, uint64_t seed) {
  workload::MajorityDominatedOptions gen;
  gen.n = n;
  gen.sparsity = s;
  gen.seed = seed;
  JobSetup setup;
  setup.global = workload::GenerateMajorityDominated(gen).Value();

  workload::PartitionOptions part;
  part.num_nodes = num_nodes;
  part.strategy = workload::PartitionStrategy::kSkewedSplit;
  part.seed = seed + 1;
  auto slices = workload::PartitionAdditive(setup.global, part).Value();
  setup.splits = ExpandSlicesToEvents(slices, events_per_key, seed + 2);
  return setup;
}

TEST(ExpandSlicesTest, EventsSumExactlyToSliceValues) {
  cs::SparseSlice slice;
  slice.indices = {3, 7};
  slice.values = {100.0, -41.5};
  auto splits = ExpandSlicesToEvents({slice}, 5, 9);
  ASSERT_EQ(splits.size(), 1u);
  EXPECT_EQ(splits[0].size(), 10u);
  double sum3 = 0.0;
  double sum7 = 0.0;
  for (const ScoreEvent& e : splits[0]) {
    if (e.key == 3) sum3 += e.score;
    if (e.key == 7) sum7 += e.score;
  }
  EXPECT_EQ(sum3, 100.0);  // Grid-exact closure.
  EXPECT_EQ(sum7, -41.5);
}

TEST(ExpandSlicesTest, SingleEventPerKey) {
  cs::SparseSlice slice;
  slice.indices = {1};
  slice.values = {5.0};
  auto splits = ExpandSlicesToEvents({slice}, 1, 1);
  ASSERT_EQ(splits[0].size(), 1u);
  EXPECT_EQ(splits[0][0].score, 5.0);
}

TEST(TraditionalTopKJobTest, MatchesCentralizedTopK) {
  JobSetup setup = MakeSetup(500, 20, 4, 3, 7);
  const size_t k = 5;
  auto result = RunTraditionalTopKJob(setup.splits, k);
  ASSERT_TRUE(result.ok());
  auto truth = outlier::TopK(setup.global, k);
  ASSERT_EQ(result.Value().top.size(), k);
  for (size_t i = 0; i < k; ++i) {
    EXPECT_EQ(result.Value().top[i].key_index, truth[i].key_index);
    EXPECT_EQ(result.Value().top[i].value, truth[i].value);
  }
}

TEST(TraditionalTopKJobTest, ShuffleBytesScaleWithDistinctKeys) {
  JobSetup setup = MakeSetup(500, 20, 4, 1, 7);
  auto result = RunTraditionalTopKJob(setup.splits, 5);
  ASSERT_TRUE(result.ok());
  // Each mapper ships one 96-bit tuple per distinct local key.
  uint64_t expected = 0;
  for (const auto& split : setup.splits) {
    std::set<uint64_t> keys;
    for (const auto& e : split) keys.insert(e.key);
    expected += keys.size() * dist::kKeyValueBytes;
  }
  EXPECT_EQ(result.Value().stats.shuffle_bytes, expected);
}

TEST(TraditionalOutlierJobTest, MatchesCentralizedOutliers) {
  JobSetup setup = MakeSetup(400, 15, 5, 2, 13);
  const size_t k = 5;
  auto result = RunTraditionalOutlierJob(setup.splits, 400, k);
  ASSERT_TRUE(result.ok());
  auto truth = outlier::ExactKOutliers(setup.global, k);
  EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(truth, result.Value().outliers), 0.0);
  EXPECT_EQ(result.Value().outliers.mode, truth.mode);
}

TEST(CsOutlierJobTest, RecoversOutliersWithSmallShuffle) {
  JobSetup setup = MakeSetup(800, 15, 6, 2, 21);
  CsJobOptions options;
  options.n = 800;
  options.m = 200;
  options.k = 5;
  options.seed = 3;
  options.iterations = 20;
  auto result = RunCsOutlierJob(setup.splits, options);
  ASSERT_TRUE(result.ok());

  auto truth = outlier::ExactKOutliers(setup.global, options.k);
  EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(truth, result.Value().outliers), 0.0);
  EXPECT_LT(outlier::ErrorOnValue(truth, result.Value().outliers), 1e-5);
  EXPECT_NEAR(result.Value().recovery.mode, 5000.0, 1e-3);

  // Shuffle: M tuples of 8 bytes per map task.
  EXPECT_EQ(result.Value().stats.shuffle_bytes,
            setup.splits.size() * options.m * dist::kMeasurementBytes);

  // And it must beat the traditional job's shuffle volume.
  auto traditional = RunTraditionalTopKJob(setup.splits, options.k);
  ASSERT_TRUE(traditional.ok());
  EXPECT_LT(result.Value().stats.shuffle_bytes,
            traditional.Value().stats.shuffle_bytes);
}

TEST(CsOutlierJobTest, AgreesWithDistProtocol) {
  // The MapReduce pipeline and the dist-layer protocol implement the same
  // math: same seed + same data => same recovered outlier keys.
  JobSetup setup = MakeSetup(600, 10, 4, 1, 33);
  CsJobOptions options;
  options.n = 600;
  options.m = 150;
  options.k = 5;
  options.seed = 17;
  options.iterations = 16;
  auto job_result = RunCsOutlierJob(setup.splits, options);
  ASSERT_TRUE(job_result.ok());

  // Direct recovery on the global vector with the same matrix.
  cs::MeasurementMatrix matrix(options.m, options.n, options.seed);
  auto y = matrix.Multiply(setup.global);
  ASSERT_TRUE(y.ok());
  cs::BompOptions bomp_options;
  bomp_options.max_iterations = options.iterations;
  auto direct = cs::RunBomp(matrix, y.Value(), bomp_options);
  ASSERT_TRUE(direct.ok());
  auto direct_set = outlier::KOutliersFromRecovery(direct.Value(), options.k);

  ASSERT_EQ(job_result.Value().outliers.outliers.size(),
            direct_set.outliers.size());
  for (size_t i = 0; i < direct_set.outliers.size(); ++i) {
    EXPECT_EQ(job_result.Value().outliers.outliers[i].key_index,
              direct_set.outliers[i].key_index);
  }
}

TEST(CsOutlierJobTest, ShuffleIndependentOfKeyCount) {
  // The CS job's shuffle volume depends only on M and the mapper count —
  // not on how many distinct keys the input carries (the scaling property
  // behind Figure 12).
  for (size_t n : {200u, 800u}) {
    workload::MajorityDominatedOptions gen;
    gen.n = n;
    gen.sparsity = 5;
    gen.seed = 3;
    auto global = workload::GenerateMajorityDominated(gen).MoveValue();
    workload::PartitionOptions part;
    part.num_nodes = 4;
    part.seed = 4;
    auto slices = workload::PartitionAdditive(global, part).MoveValue();
    auto splits = ExpandSlicesToEvents(slices, 1, 5);

    CsJobOptions options;
    options.n = n;
    options.m = 64;
    options.k = 3;
    auto result = RunCsOutlierJob(splits, options).MoveValue();
    EXPECT_EQ(result.stats.shuffle_bytes,
              4u * 64 * dist::kMeasurementBytes)
        << "n = " << n;
  }
}

TEST(TraditionalTopKJobTest, CombinerShrinksShuffleNotAnswers) {
  JobSetup setup = MakeSetup(300, 10, 4, 6, 17);
  const size_t k = 5;
  auto combined = RunTraditionalTopKJob(setup.splits, k, /*combine=*/true);
  auto raw = RunTraditionalTopKJob(setup.splits, k, /*combine=*/false);
  ASSERT_TRUE(combined.ok());
  ASSERT_TRUE(raw.ok());
  // Same answer either way...
  ASSERT_EQ(combined.Value().top.size(), raw.Value().top.size());
  for (size_t i = 0; i < combined.Value().top.size(); ++i) {
    EXPECT_EQ(combined.Value().top[i].key_index,
              raw.Value().top[i].key_index);
    EXPECT_EQ(combined.Value().top[i].value, raw.Value().top[i].value);
  }
  // ...but the combiner cuts the shuffle by ~the events-per-key factor.
  EXPECT_LT(combined.Value().stats.shuffle_bytes * 3,
            raw.Value().stats.shuffle_bytes);
}

TEST(TraditionalTopKJobTest, FewerResultsThanKWhenKeySpaceSmall) {
  std::vector<std::vector<ScoreEvent>> splits = {
      {ScoreEvent{0, 5.0}, ScoreEvent{1, 3.0}}};
  auto result = RunTraditionalTopKJob(splits, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.Value().top.size(), 2u);
  EXPECT_EQ(result.Value().top[0].key_index, 0u);
}

TEST(TraditionalTopKJobTest, CombinerAccountsPreAndPostVolume) {
  JobSetup setup = MakeSetup(300, 10, 4, 6, 17);
  auto combined = RunTraditionalTopKJob(setup.splits, 5, /*combine=*/true);
  ASSERT_TRUE(combined.ok());
  // Pre-combine: one 96-bit tuple per raw event.
  uint64_t raw_events = 0;
  for (const auto& split : setup.splits) raw_events += split.size();
  EXPECT_EQ(combined.Value().stats.pre_combine_shuffle_tuples, raw_events);
  EXPECT_EQ(combined.Value().stats.pre_combine_shuffle_bytes,
            raw_events * dist::kKeyValueBytes);
  // Post-combine: one tuple per (map task, distinct key).
  uint64_t distinct = 0;
  for (const auto& split : setup.splits) {
    std::set<uint64_t> keys;
    for (const auto& e : split) keys.insert(e.key);
    distinct += keys.size();
  }
  EXPECT_EQ(combined.Value().stats.shuffle_tuples, distinct);
  EXPECT_EQ(combined.Value().stats.shuffle_bytes,
            distinct * dist::kKeyValueBytes);
}

TEST(CsOutlierJobTest, BitIdenticalAcrossThreadLimits) {
  // The parallel engine must not move a single bit of the CS job's
  // output: outliers, recovered mode, and byte accounting are pinned
  // across parallelism limits against the sequential run.
  JobSetup setup = MakeSetup(500, 12, 6, 3, 29);
  CsJobOptions options;
  options.n = 500;
  options.m = 120;
  options.k = 5;
  options.seed = 11;
  options.iterations = 16;

  const size_t previous_limit = GetParallelismLimit();
  SetParallelismLimit(1);
  auto sequential = RunCsOutlierJob(setup.splits, options);
  ASSERT_TRUE(sequential.ok());
  for (size_t limit : {2u, 8u}) {
    SetParallelismLimit(limit);
    auto parallel = RunCsOutlierJob(setup.splits, options);
    ASSERT_TRUE(parallel.ok());
    const auto& a = sequential.Value();
    const auto& b = parallel.Value();
    ASSERT_EQ(a.outliers.outliers.size(), b.outliers.outliers.size());
    for (size_t i = 0; i < a.outliers.outliers.size(); ++i) {
      EXPECT_EQ(a.outliers.outliers[i].key_index,
                b.outliers.outliers[i].key_index);
      EXPECT_EQ(a.outliers.outliers[i].value, b.outliers.outliers[i].value);
    }
    EXPECT_EQ(a.outliers.mode, b.outliers.mode);
    EXPECT_EQ(a.recovery.mode, b.recovery.mode);
    EXPECT_EQ(a.stats.shuffle_bytes, b.stats.shuffle_bytes);
    EXPECT_EQ(a.stats.shuffle_tuples, b.stats.shuffle_tuples);
    EXPECT_EQ(a.stats.input_bytes, b.stats.input_bytes);
  }
  SetParallelismLimit(previous_limit);
}

TEST(CsOutlierJobTest, InvalidOptionsRejected) {
  CsJobOptions options;
  EXPECT_FALSE(RunCsOutlierJob({}, options).ok());
  options.n = 10;
  EXPECT_FALSE(RunCsOutlierJob({}, options).ok());  // m == 0.
}

TEST(CsOutlierJobTest, OutOfRangeKeyRejected) {
  CsJobOptions options;
  options.n = 4;
  options.m = 2;
  std::vector<std::vector<ScoreEvent>> splits = {{ScoreEvent{9, 1.0}}};
  auto result = RunCsOutlierJob(splits, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace csod::mr
