// End-to-end tests spanning workload generation, partitioning, the
// distributed protocols, the MapReduce pipeline, and the public detector
// facade — plus edge/failure injection.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/csod.h"
#include "la/vector_ops.h"

namespace csod {
namespace {

TEST(IntegrationTest, ClickLogWorkloadEndToEnd) {
  // The full production scenario: synthetic click-log aggregate split over
  // 8 data centers, CS protocol vs exact baseline at ~3% of ALL's cost.
  workload::ClickLogOptions gen;
  gen.score_type = workload::ClickScoreType::kCoreSearch;
  gen.n_override = 2000;
  gen.sparsity_override = 40;
  gen.seed = 7;
  auto data = workload::GenerateClickLog(gen).MoveValue();

  workload::PartitionOptions part;
  part.num_nodes = 8;
  part.strategy = workload::PartitionStrategy::kSkewedSplit;
  part.cancellation_noise = 1000.0;
  part.seed = 8;
  auto slices = workload::PartitionAdditive(data.global, part).MoveValue();

  dist::Cluster cluster(gen.n_override);
  for (auto& slice : slices) {
    ASSERT_TRUE(cluster.AddNode(std::move(slice)).ok());
  }

  const size_t k = 5;
  dist::AllTransmitProtocol all;
  dist::CommStats all_comm;
  auto truth = all.Run(cluster, k, &all_comm).MoveValue();

  dist::CsProtocolOptions cs_options;
  cs_options.m = 400;
  cs_options.seed = 77;
  cs_options.iterations = 60;
  dist::CsOutlierProtocol cs_protocol(cs_options);
  dist::CommStats cs_comm;
  auto estimate = cs_protocol.Run(cluster, k, &cs_comm).MoveValue();

  EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(truth, estimate), 0.0);
  EXPECT_LT(outlier::ErrorOnValue(truth, estimate), 0.01);
  EXPECT_NEAR(estimate.mode, data.mode, 2.5);  // Within the jitter band.
  const double cost_ratio = static_cast<double>(cs_comm.bytes_total()) /
                            static_cast<double>(all_comm.bytes_total());
  EXPECT_LT(cost_ratio, 0.25);
}

TEST(IntegrationTest, MapReduceMatchesDistProtocolMatchesDetector) {
  // Three implementation layers of the same algorithm agree on the same
  // data and seed.
  workload::MajorityDominatedOptions gen;
  gen.n = 700;
  gen.sparsity = 12;
  gen.seed = 19;
  auto global = workload::GenerateMajorityDominated(gen).MoveValue();

  workload::PartitionOptions part;
  part.num_nodes = 5;
  part.strategy = workload::PartitionStrategy::kUniformSplit;
  part.seed = 20;
  auto slices = workload::PartitionAdditive(global, part).MoveValue();

  const size_t k = 5;
  const uint64_t seed = 42;
  const size_t m = 160;
  const size_t iterations = 18;

  // Layer 1: dist protocol.
  dist::Cluster cluster(gen.n);
  for (const auto& slice : slices) {
    ASSERT_TRUE(cluster.AddNode(slice).ok());
  }
  dist::CsProtocolOptions proto_options;
  proto_options.m = m;
  proto_options.seed = seed;
  proto_options.iterations = iterations;
  dist::CsOutlierProtocol protocol(proto_options);
  dist::CommStats comm;
  auto from_protocol = protocol.Run(cluster, k, &comm).MoveValue();

  // Layer 2: MapReduce job.
  auto splits = mr::ExpandSlicesToEvents(slices, 2, 21);
  mr::CsJobOptions job_options;
  job_options.n = gen.n;
  job_options.m = m;
  job_options.k = k;
  job_options.seed = seed;
  job_options.iterations = iterations;
  auto from_job = mr::RunCsOutlierJob(splits, job_options).MoveValue();

  // Layer 3: detector facade.
  core::DetectorOptions det_options;
  det_options.n = gen.n;
  det_options.m = m;
  det_options.seed = seed;
  det_options.iterations = iterations;
  auto detector = core::DistributedOutlierDetector::Create(det_options)
                      .MoveValue();
  for (const auto& slice : slices) {
    ASSERT_TRUE(detector->AddSource(slice).ok());
  }
  auto from_detector = detector->Detect(k).MoveValue();

  ASSERT_EQ(from_protocol.outliers.size(), k);
  ASSERT_EQ(from_job.outliers.outliers.size(), k);
  ASSERT_EQ(from_detector.outliers.size(), k);
  for (size_t i = 0; i < k; ++i) {
    EXPECT_EQ(from_protocol.outliers[i].key_index,
              from_detector.outliers[i].key_index);
    EXPECT_EQ(from_protocol.outliers[i].key_index,
              from_job.outliers.outliers[i].key_index);
  }
}

TEST(IntegrationTest, KeyDictionaryPipeline) {
  // Keys enter as strings, vectors are built against the dictionary, and
  // detected outliers map back to the original keys.
  workload::GlobalKeyDictionary dict;
  const size_t n = 300;
  for (size_t i = 0; i < n; ++i) {
    dict.Intern(workload::ClickLogKeyForIndex(i));
  }
  ASSERT_EQ(dict.size(), n);

  std::vector<double> global(n, 1800.0);
  const std::string bad_key = workload::ClickLogKeyForIndex(123);
  global[dict.Lookup(bad_key).Value()] = -50000.0;

  core::DetectorOptions options;
  options.n = n;
  options.m = 100;
  options.seed = 4;
  options.iterations = 12;
  auto detector =
      core::DistributedOutlierDetector::Create(options).MoveValue();
  ASSERT_TRUE(detector->AddSource(cs::SparseSlice::FromDense(global)).ok());
  auto result = detector->Detect(1).MoveValue();
  ASSERT_EQ(result.outliers.size(), 1u);
  EXPECT_EQ(dict.KeyOf(result.outliers[0].key_index).Value(), bad_key);
}

TEST(IntegrationTest, PowerLawTopKViaCs) {
  // Section 6.2: top-k via CS on zero-mode (power-law) data.
  workload::PowerLawOptions gen;
  gen.n = 1000;
  gen.alpha = 0.7;  // Very heavy tail: clear top values.
  gen.seed = 29;
  auto global = workload::GeneratePowerLaw(gen).MoveValue();

  core::DetectorOptions options;
  options.n = gen.n;
  options.m = 300;
  options.seed = 31;
  options.iterations = 40;
  auto detector =
      core::DistributedOutlierDetector::Create(options).MoveValue();
  ASSERT_TRUE(detector->AddSource(cs::SparseSlice::FromDense(global)).ok());

  const size_t k = 3;
  auto estimated = detector->DetectTopK(k).MoveValue();
  auto truth = outlier::TopK(global, k);
  ASSERT_EQ(estimated.size(), k);
  // The heavy hitters dominate: keys must match.
  for (size_t i = 0; i < k; ++i) {
    EXPECT_EQ(estimated[i].key_index, truth[i].key_index) << "rank " << i;
  }
}

// --- Edge and failure injection. ---

TEST(EdgeCaseTest, AllEqualDataHasNoOutliers) {
  const size_t n = 200;
  std::vector<double> global(n, 777.0);
  core::DetectorOptions options;
  options.n = n;
  options.m = 60;
  options.seed = 2;
  options.iterations = 10;
  auto detector =
      core::DistributedOutlierDetector::Create(options).MoveValue();
  ASSERT_TRUE(detector->AddSource(cs::SparseSlice::FromDense(global)).ok());
  auto result = detector->Detect(5).MoveValue();
  EXPECT_NEAR(result.mode, 777.0, 1e-6);
  // Any reported "outliers" must be numerically negligible.
  for (const auto& o : result.outliers) {
    EXPECT_LT(o.divergence, 1e-3);
  }
}

TEST(EdgeCaseTest, KLargerThanOutlierCount) {
  const size_t n = 200;
  std::vector<double> global(n, 100.0);
  global[7] = 9000.0;
  core::DetectorOptions options;
  options.n = n;
  options.m = 80;
  options.seed = 3;
  options.iterations = 10;
  auto detector =
      core::DistributedOutlierDetector::Create(options).MoveValue();
  ASSERT_TRUE(detector->AddSource(cs::SparseSlice::FromDense(global)).ok());
  auto result = detector->Detect(50).MoveValue();
  ASSERT_GE(result.outliers.size(), 1u);
  EXPECT_EQ(result.outliers[0].key_index, 7u);
  EXPECT_NEAR(result.outliers[0].value, 9000.0, 1e-3);
}

TEST(EdgeCaseTest, EmptySliceContributesNothing) {
  dist::Cluster cluster(50);
  cs::SparseSlice data;
  data.indices = {10};
  data.values = {500.0};
  ASSERT_TRUE(cluster.AddNode(data).ok());
  ASSERT_TRUE(cluster.AddNode(cs::SparseSlice{}).ok());  // Empty node.

  dist::CsProtocolOptions options;
  options.m = 30;
  options.seed = 5;
  options.iterations = 8;
  dist::CsOutlierProtocol protocol(options);
  dist::CommStats comm;
  auto result = protocol.Run(cluster, 1, &comm);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.Value().outliers.size(), 1u);
  EXPECT_EQ(result.Value().outliers[0].key_index, 10u);
}

TEST(EdgeCaseTest, FullMeasurementDegeneratesToExact) {
  // M = N: the measurement is a full-rank linear system; recovery must be
  // essentially exact for any vector.
  const size_t n = 40;
  std::vector<double> global(n);
  Rng rng(9);
  for (double& v : global) v = rng.NextGaussian() * 10.0;
  cs::MeasurementMatrix matrix(n, n, 6);
  auto y = matrix.Multiply(global);
  ASSERT_TRUE(y.ok());
  cs::BompOptions options;
  options.max_iterations = n;
  options.stop_on_residual_stagnation = false;
  auto recovery = cs::RunBomp(matrix, y.Value(), options);
  ASSERT_TRUE(recovery.ok());
  auto xhat = recovery.Value().Materialize(n);
  EXPECT_LT(la::DistanceL2(xhat, global) / la::Norm2(global), 1e-6);
}

TEST(EdgeCaseTest, SingleKeyUniverse) {
  core::DetectorOptions options;
  options.n = 1;
  options.m = 1;
  options.seed = 1;
  options.iterations = 2;
  auto detector =
      core::DistributedOutlierDetector::Create(options).MoveValue();
  cs::SparseSlice slice;
  slice.indices = {0};
  slice.values = {123.0};
  ASSERT_TRUE(detector->AddSource(slice).ok());
  auto recovery = detector->Recover(2);
  ASSERT_TRUE(recovery.ok());
  auto xhat = recovery.Value().Materialize(1);
  EXPECT_NEAR(xhat[0], 123.0, 1e-6);
}

TEST(EdgeCaseTest, NodeChurnKeepsAnswersConsistent) {
  // Remove a node: detection reflects the surviving aggregate (the
  // Section 1 "data centers join/leave" challenge). Node 0 holds a small
  // slice; after removal its keys drop to zero and become outliers
  // themselves, while the planted outliers stay dominant.
  const size_t n = 400;
  std::vector<double> base(n, 5000.0);
  base[50] = 25000.0;   // divergence 20000
  base[150] = -9000.0;  // divergence 14000

  cs::SparseSlice node0;  // Holds keys 0..4 entirely.
  cs::SparseSlice node1;  // Holds everything else.
  for (size_t i = 0; i < n; ++i) {
    if (i < 5) {
      node0.indices.push_back(i);
      node0.values.push_back(base[i]);
    } else {
      node1.indices.push_back(i);
      node1.values.push_back(base[i]);
    }
  }

  core::DetectorOptions options;
  options.n = n;
  options.m = 150;
  options.seed = 77;
  options.iterations = 16;
  auto detector =
      core::DistributedOutlierDetector::Create(options).MoveValue();
  auto id0 = detector->AddSource(node0).MoveValue();
  ASSERT_TRUE(detector->AddSource(node1).ok());
  ASSERT_TRUE(detector->RemoveSource(id0).ok());

  // Survivor: keys 0..4 are 0 (divergence 5000), planted outliers remain.
  std::vector<double> survivor = base;
  for (size_t i = 0; i < 5; ++i) survivor[i] = 0.0;
  const auto truth = outlier::ExactKOutliers(survivor, 2);
  const auto detected = detector->Detect(2).MoveValue();
  EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(truth, detected), 0.0);
  EXPECT_EQ(detected.outliers[0].key_index, 50u);
  EXPECT_EQ(detected.outliers[1].key_index, 150u);
}

}  // namespace
}  // namespace csod
