#include "common/random.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/grid.h"

namespace csod {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UnitDoubleInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, BoundedInRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(42);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(CounterGaussianTest, PureFunctionOfSeedAndIndex) {
  CounterGaussian g1(99);
  CounterGaussian g2(99);
  // Any evaluation order yields the same values.
  const double a = g1.At(5);
  const double b = g1.At(0);
  EXPECT_EQ(g2.At(0), b);
  EXPECT_EQ(g2.At(5), a);
}

TEST(CounterGaussianTest, DistinctSeedsDecorrelated) {
  CounterGaussian g1(1);
  CounterGaussian g2(2);
  double dot = 0.0;
  double n1 = 0.0;
  double n2 = 0.0;
  for (uint64_t i = 0; i < 5000; ++i) {
    const double a = g1.At(i);
    const double b = g2.At(i);
    dot += a * b;
    n1 += a * a;
    n2 += b * b;
  }
  EXPECT_LT(std::fabs(dot) / std::sqrt(n1 * n2), 0.05);
}

TEST(CounterGaussianTest, FillMatchesAt) {
  CounterGaussian gen(4242);
  for (uint64_t count : {0u, 1u, 2u, 7u, 64u, 101u}) {
    std::vector<double> bulk(count);
    gen.Fill(count, bulk.data());
    for (uint64_t i = 0; i < count; ++i) {
      EXPECT_EQ(bulk[i], gen.At(i)) << "count=" << count << " i=" << i;
    }
  }
}

TEST(CounterGaussianTest, Moments) {
  CounterGaussian g(31337);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = g.At(static_cast<uint64_t>(i));
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(UnitDoubleTest, Ranges) {
  EXPECT_EQ(ToUnitDouble(0), 0.0);
  EXPECT_LT(ToUnitDouble(~uint64_t{0}), 1.0);
  EXPECT_GT(ToOpenUnitDouble(0), 0.0);
  EXPECT_LE(ToOpenUnitDouble(~uint64_t{0}), 1.0);
}

TEST(HashTest, SplitMix64IsDeterministicAndMixing) {
  EXPECT_EQ(SplitMix64(0), SplitMix64(0));
  EXPECT_NE(SplitMix64(0), SplitMix64(1));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(GridTest, QuantizationIsIdempotent) {
  const double v = QuantizeToGrid(1234.56789);
  EXPECT_EQ(QuantizeToGrid(v), v);
}

TEST(GridTest, GridSumsAreExact) {
  // Sums of grid multiples below 2^37 are exact in any order.
  Rng rng(5);
  std::vector<double> shares;
  double total = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double s = QuantizeToGrid(rng.NextDouble() * 1000.0 - 500.0);
    shares.push_back(s);
    total += s;
  }
  double reverse_total = 0.0;
  for (auto it = shares.rbegin(); it != shares.rend(); ++it) {
    reverse_total += *it;
  }
  EXPECT_EQ(total, reverse_total);
}

}  // namespace
}  // namespace csod
