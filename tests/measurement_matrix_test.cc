#include "cs/measurement_matrix.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "common/simd.h"
#include "la/vector_ops.h"

namespace csod::cs {
namespace {

// Restores the global parallelism limit a test overrode.
class ScopedParallelismLimit {
 public:
  explicit ScopedParallelismLimit(size_t limit)
      : previous_(GetParallelismLimit()) {
    SetParallelismLimit(limit);
  }
  ~ScopedParallelismLimit() { SetParallelismLimit(previous_); }

 private:
  size_t previous_;
};

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::Level level)
      : previous_(simd::SetLevelForTesting(level)) {}
  ~ScopedSimdLevel() { simd::SetLevelForTesting(previous_); }

 private:
  simd::Level previous_;
};

TEST(MeasurementMatrixTest, ConsensusProperty) {
  // Two "nodes" building the matrix from the same seed get identical
  // entries — the Section 3.1 consensus without transmission.
  MeasurementMatrix node_a(16, 64, /*seed=*/77);
  MeasurementMatrix node_b(16, 64, /*seed=*/77);
  for (size_t i = 0; i < 16; ++i) {
    for (size_t j = 0; j < 64; ++j) {
      EXPECT_EQ(node_a.Entry(i, j), node_b.Entry(i, j));
    }
  }
}

TEST(MeasurementMatrixTest, DifferentSeedsDiffer) {
  MeasurementMatrix a(8, 8, 1);
  MeasurementMatrix b(8, 8, 2);
  bool any_diff = false;
  for (size_t i = 0; i < 8 && !any_diff; ++i) {
    for (size_t j = 0; j < 8; ++j) {
      if (a.Entry(i, j) != b.Entry(i, j)) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(MeasurementMatrixTest, CachedEqualsImplicit) {
  MeasurementMatrix cached(16, 32, 5,
                           /*cache_budget_bytes=*/1 << 20);
  MeasurementMatrix implicit(16, 32, 5, /*cache_budget_bytes=*/0);
  ASSERT_TRUE(cached.cached());
  ASSERT_FALSE(implicit.cached());
  for (size_t i = 0; i < 16; ++i) {
    for (size_t j = 0; j < 32; ++j) {
      EXPECT_EQ(cached.Entry(i, j), implicit.Entry(i, j));
    }
  }
}

TEST(MeasurementMatrixTest, CacheBudgetRespected) {
  // 16*32*8 = 4096 bytes; a 1000-byte budget must stay implicit.
  MeasurementMatrix small_budget(16, 32, 5, 1000);
  EXPECT_FALSE(small_budget.cached());
}

TEST(MeasurementMatrixTest, RowPrefixProperty) {
  // A taller matrix with the same seed extends a shorter one row-wise
  // (entry (i, j) depends only on (seed, j, i), never on M) — modulo the
  // 1/sqrt(M) scaling. This is what lets the adaptive protocol request
  // additional measurement rows without re-transmitting the old ones.
  MeasurementMatrix short_matrix(8, 24, 99);
  MeasurementMatrix tall_matrix(32, 24, 99);
  const double rescale = std::sqrt(8.0) / std::sqrt(32.0);
  for (size_t i = 0; i < 8; ++i) {
    for (size_t j = 0; j < 24; ++j) {
      EXPECT_DOUBLE_EQ(short_matrix.Entry(i, j) * rescale,
                       tall_matrix.Entry(i, j))
          << i << "," << j;
    }
  }
}

TEST(MeasurementMatrixTest, EntryVariance) {
  // Entries are N(0, 1/M): empirical variance over many entries ~ 1/M.
  const size_t m = 64;
  MeasurementMatrix matrix(m, 512, 99);
  double sum = 0.0;
  double sum_sq = 0.0;
  size_t count = 0;
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < 512; ++j) {
      const double v = matrix.Entry(i, j);
      sum += v;
      sum_sq += v * v;
      ++count;
    }
  }
  const double mean = sum / count;
  const double var = sum_sq / count - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.005);
  EXPECT_NEAR(var, 1.0 / m, 0.1 / m);
}

TEST(MeasurementMatrixTest, ColumnUnitNormInExpectation) {
  // E||column||^2 = M * 1/M = 1.
  MeasurementMatrix matrix(128, 64, 3);
  double total = 0.0;
  for (size_t j = 0; j < 64; ++j) {
    total += la::Norm2Squared(matrix.Column(j));
  }
  EXPECT_NEAR(total / 64.0, 1.0, 0.1);
}

TEST(MeasurementMatrixTest, MultiplyMatchesManual) {
  MeasurementMatrix matrix(8, 10, 42);
  std::vector<double> x(10);
  Rng rng(7);
  for (double& v : x) v = rng.NextGaussian();
  auto y = matrix.Multiply(x);
  ASSERT_TRUE(y.ok());
  for (size_t i = 0; i < 8; ++i) {
    double expected = 0.0;
    for (size_t j = 0; j < 10; ++j) expected += matrix.Entry(i, j) * x[j];
    EXPECT_NEAR(y.Value()[i], expected, 1e-12);
  }
}

TEST(MeasurementMatrixTest, MultiplySparseMatchesDense) {
  MeasurementMatrix matrix(12, 50, 11);
  std::vector<double> x(50, 0.0);
  x[3] = 2.5;
  x[17] = -1.0;
  x[49] = 7.0;
  auto dense = matrix.Multiply(x);
  auto sparse = matrix.MultiplySparse({3, 17, 49}, {2.5, -1.0, 7.0});
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(sparse.ok());
  EXPECT_NEAR(la::DistanceL2(dense.Value(), sparse.Value()), 0.0, 1e-12);
}

TEST(MeasurementMatrixTest, MultiplyErrors) {
  MeasurementMatrix matrix(4, 6, 1);
  EXPECT_FALSE(matrix.Multiply({1, 2}).ok());
  EXPECT_FALSE(matrix.MultiplySparse({7}, {1.0}).ok());  // index out of N
  EXPECT_FALSE(matrix.MultiplySparse({1, 2}, {1.0}).ok());  // size mismatch
  EXPECT_FALSE(matrix.CorrelateAll({1, 2}).ok());
}

TEST(MeasurementMatrixTest, CorrelateAllMatchesColumnDots) {
  MeasurementMatrix matrix(10, 20, 13);
  std::vector<double> r(10);
  Rng rng(3);
  for (double& v : r) v = rng.NextGaussian();
  auto c = matrix.CorrelateAll(r);
  ASSERT_TRUE(c.ok());
  for (size_t j = 0; j < 20; ++j) {
    EXPECT_NEAR(c.Value()[j], la::Dot(matrix.Column(j), r), 1e-12);
  }
}

TEST(MeasurementMatrixTest, CorrelateImplicitMatchesCached) {
  MeasurementMatrix cached(10, 20, 13);
  MeasurementMatrix implicit(10, 20, 13, /*cache_budget_bytes=*/0);
  std::vector<double> r(10);
  Rng rng(3);
  for (double& v : r) v = rng.NextGaussian();
  auto a = cached.CorrelateAll(r);
  auto b = implicit.CorrelateAll(r);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(la::DistanceL2(a.Value(), b.Value()), 0.0, 1e-10);
}

// Reference implementation of the fused kernel: full correlate, then an
// ascending strict-> scan (lowest index wins ties).
CorrelateArgmaxResult ScanArgmax(const MeasurementMatrix& matrix,
                                 const std::vector<double>& r,
                                 const std::vector<bool>* skip) {
  auto c = matrix.CorrelateAll(r).MoveValue();
  CorrelateArgmaxResult out;
  for (size_t j = 0; j < c.size(); ++j) {
    if (skip != nullptr && (*skip)[j]) continue;
    const double a = std::fabs(c[j]);
    if (a > out.abs_correlation) {
      out.abs_correlation = a;
      out.correlation = c[j];
      out.index = j;
    }
  }
  return out;
}

TEST(MeasurementMatrixTest, CorrelateArgmaxMatchesScan) {
  // n = 600 exercises the 4-wide register-blocked path plus remainder
  // columns; masks carve unaligned holes into the 4-column batches.
  for (const size_t budget : {size_t{1} << 24, size_t{0}}) {
    MeasurementMatrix matrix(24, 600, 17, budget);
    Rng rng(29);
    std::vector<double> r(24);
    for (double& v : r) v = rng.NextGaussian();

    std::vector<bool> mask(600, false);
    for (size_t round = 0; round < 8; ++round) {
      const auto expected = ScanArgmax(matrix, r, &mask);
      const auto got = matrix.CorrelateArgmax(r, &mask).MoveValue();
      EXPECT_EQ(got.index, expected.index) << "budget=" << budget;
      EXPECT_EQ(got.correlation, expected.correlation);  // Bitwise.
      EXPECT_EQ(got.abs_correlation, expected.abs_correlation);
      ASSERT_NE(got.index, CorrelateArgmaxResult::kNoIndex);
      mask[got.index] = true;  // Mimic OMP: knock out the winner, repeat.
    }

    // No mask at all.
    const auto no_mask = matrix.CorrelateArgmax(r).MoveValue();
    const auto no_mask_expected = ScanArgmax(matrix, r, nullptr);
    EXPECT_EQ(no_mask.index, no_mask_expected.index);
    EXPECT_EQ(no_mask.abs_correlation, no_mask_expected.abs_correlation);
  }
}

TEST(MeasurementMatrixTest, CorrelateArgmaxTieBreaksLowestIndex) {
  MeasurementMatrix matrix(8, 40, 3);
  // r = 0 makes every correlation exactly 0.0 — a 40-way tie. The lowest
  // unmasked index must win.
  const std::vector<double> zero(8, 0.0);
  auto pick = matrix.CorrelateArgmax(zero).MoveValue();
  EXPECT_EQ(pick.index, 0u);
  EXPECT_EQ(pick.abs_correlation, 0.0);

  std::vector<bool> mask(40, false);
  mask[0] = mask[1] = mask[2] = true;
  pick = matrix.CorrelateArgmax(zero, &mask).MoveValue();
  EXPECT_EQ(pick.index, 3u);
  EXPECT_EQ(pick.abs_correlation, 0.0);
}

TEST(MeasurementMatrixTest, CorrelateArgmaxAllMaskedReturnsNoIndex) {
  MeasurementMatrix matrix(8, 20, 3);
  std::vector<double> r(8, 1.0);
  std::vector<bool> mask(20, true);
  auto pick = matrix.CorrelateArgmax(r, &mask).MoveValue();
  EXPECT_EQ(pick.index, CorrelateArgmaxResult::kNoIndex);
}

TEST(MeasurementMatrixTest, CorrelateArgmaxErrors) {
  MeasurementMatrix matrix(8, 20, 3);
  EXPECT_FALSE(matrix.CorrelateArgmax({1.0, 2.0}).ok());  // r size != M
  std::vector<double> r(8, 1.0);
  std::vector<bool> short_mask(20, false);
  // With skip_offset = 1 the mask must cover n + 1 entries.
  EXPECT_FALSE(matrix.CorrelateArgmax(r, &short_mask, 1).ok());
}

TEST(MeasurementMatrixTest, MultiplySparseDuplicateIndicesAccumulate) {
  // A pre-aggregation slice may legitimately carry the same key twice; the
  // kernel must treat that as the summed coefficient.
  MeasurementMatrix matrix(12, 50, 11);
  auto dup = matrix.MultiplySparse({3, 17, 3}, {2.5, -1.0, 1.5});
  auto manual = matrix.Multiply([] {
    std::vector<double> x(50, 0.0);
    x[3] = 2.5 + 1.5;
    x[17] = -1.0;
    return x;
  }());
  ASSERT_TRUE(dup.ok());
  ASSERT_TRUE(manual.ok());
  EXPECT_NEAR(la::DistanceL2(dup.Value(), manual.Value()), 0.0, 1e-12);
}

TEST(MeasurementMatrixTest, CorrelateImplicitMatchesCachedBitwise) {
  // Both paths dot the same pre-scaled column bits through the same
  // canonical lane split, so cached vs implicit is exact, not approximate.
  MeasurementMatrix cached(24, 600, 13);
  MeasurementMatrix implicit(24, 600, 13, /*cache_budget_bytes=*/0);
  std::vector<double> r(24);
  Rng rng(3);
  for (double& v : r) v = rng.NextGaussian();
  auto a = cached.CorrelateAll(r);
  auto b = implicit.CorrelateAll(r);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.Value(), b.Value());
}

TEST(MeasurementMatrixTest, KernelsBitIdenticalAcrossLimitsAndLevels) {
  // N spans multiple reduction blocks (kReductionBlockColumns) and the
  // sparse input spans multiple nnz blocks, so the fixed-geometry partials
  // actually get exercised. Reference: serial + portable SIMD.
  const size_t m = 24, n = 5000;
  Rng rng(41);
  std::vector<double> x(n, 0.0);
  for (size_t i = 0; i < n; i += 3) x[i] = rng.NextGaussian();
  std::vector<size_t> sparse_idx;
  std::vector<double> sparse_val;
  for (size_t k = 0; k < 1300; ++k) {
    sparse_idx.push_back((k * 37) % n);
    sparse_val.push_back(rng.NextGaussian());
  }
  std::vector<double> r(m);
  for (double& v : r) v = rng.NextGaussian();

  for (const size_t budget : {size_t{1} << 24, size_t{0}}) {
    MeasurementMatrix matrix(m, n, 17, budget);

    std::vector<double> ref_multiply, ref_sparse, ref_correlate, ref_bias;
    CorrelateArgmaxResult ref_argmax;
    {
      ScopedParallelismLimit serial(1);
      ScopedSimdLevel portable(simd::Level::kPortable);
      ref_multiply = matrix.Multiply(x).MoveValue();
      ref_sparse = matrix.MultiplySparse(sparse_idx, sparse_val).MoveValue();
      ref_correlate = matrix.CorrelateAll(r).MoveValue();
      ref_bias = matrix.BiasColumn();
      ref_argmax = matrix.CorrelateArgmax(r).MoveValue();
    }

    for (const size_t limit : {size_t{1}, size_t{2}, size_t{8}}) {
      for (simd::Level level :
           {simd::Level::kPortable, simd::Level::kAvx2}) {
        ScopedParallelismLimit scoped_limit(limit);
        ScopedSimdLevel scoped_level(level);
        const auto label = [&] {
          return "budget=" + std::to_string(budget) +
                 " limit=" + std::to_string(limit) + " level=" +
                 std::string(simd::LevelName(simd::ActiveLevel()));
        };
        EXPECT_EQ(matrix.Multiply(x).Value(), ref_multiply) << label();
        EXPECT_EQ(matrix.MultiplySparse(sparse_idx, sparse_val).Value(),
                  ref_sparse)
            << label();
        EXPECT_EQ(matrix.CorrelateAll(r).Value(), ref_correlate) << label();
        EXPECT_EQ(matrix.BiasColumn(), ref_bias) << label();
        const auto argmax = matrix.CorrelateArgmax(r).MoveValue();
        EXPECT_EQ(argmax.index, ref_argmax.index) << label();
        EXPECT_EQ(argmax.correlation, ref_argmax.correlation) << label();
      }
    }
  }
}

TEST(MeasurementMatrixTest, MultiplySparseBatchTinyScratchMatchesPerSlice) {
  // A scratch budget far below one wave's worth of columns forces the
  // implicit batch kernel through many generation waves; every wave split
  // must leave the per-slice and summed bits untouched.
  const size_t m = 16, n = 2000;
  MeasurementMatrix implicit(m, n, 23, /*cache_budget_bytes=*/0);
  Rng rng(9);
  std::vector<SparseVectorView> views;
  std::vector<std::vector<size_t>> idx(4);
  std::vector<std::vector<double>> val(4);
  for (size_t l = 0; l < 4; ++l) {
    const size_t nnz = 700 + 100 * l;  // > kReductionBlockNnz: multi-block.
    for (size_t k = 0; k < nnz; ++k) {
      idx[l].push_back((k * 13 + l) % n);
      val[l].push_back(rng.NextGaussian());
    }
    views.push_back(SparseVectorView{idx[l].data(), val[l].data(), nnz});
  }

  std::vector<double> expected_sum(m, 0.0);
  std::vector<double> expected_per(4 * m);
  for (size_t l = 0; l < 4; ++l) {
    auto y = implicit.MultiplySparse(idx[l], val[l]);
    ASSERT_TRUE(y.ok());
    std::copy(y.Value().begin(), y.Value().end(),
              expected_per.begin() + l * m);
    for (size_t i = 0; i < m; ++i) expected_sum[i] += y.Value()[i];
  }

  // One column of scratch (m * 8 bytes) — the floor still guarantees a full
  // reduction block per wave; anything smaller is clamped up.
  for (const size_t scratch : {size_t{1}, m * sizeof(double) * 10,
                               MeasurementMatrix::kDefaultBatchScratchBytes}) {
    std::vector<double> sum, per;
    ASSERT_TRUE(implicit.MultiplySparseBatch(views, &sum, &per, scratch).ok());
    EXPECT_EQ(sum, expected_sum) << "scratch=" << scratch;
    EXPECT_EQ(per, expected_per) << "scratch=" << scratch;
  }

  // Sum-only and per-slice-only modes agree with the combined call.
  std::vector<double> sum_only;
  ASSERT_TRUE(
      implicit.MultiplySparseBatch(views, &sum_only, nullptr, 1).ok());
  EXPECT_EQ(sum_only, expected_sum);
  std::vector<double> per_only;
  ASSERT_TRUE(
      implicit.MultiplySparseBatch(views, nullptr, &per_only, 1).ok());
  EXPECT_EQ(per_only, expected_per);
}

TEST(MeasurementMatrixTest, CachedBiasColumnMatchesFreshCompute) {
  MeasurementMatrix matrix(16, 3000, 7);
  const std::vector<double>& cached = matrix.CachedBiasColumn();
  EXPECT_EQ(cached, matrix.BiasColumn());  // Bitwise.
  // Memoized: the second call hands back the same vector.
  EXPECT_EQ(&matrix.CachedBiasColumn(), &cached);
}

TEST(MeasurementMatrixTest, BiasColumnIsScaledColumnSum) {
  MeasurementMatrix matrix(6, 9, 21);
  const std::vector<double> phi0 = matrix.BiasColumn();
  for (size_t i = 0; i < 6; ++i) {
    double sum = 0.0;
    for (size_t j = 0; j < 9; ++j) sum += matrix.Entry(i, j);
    EXPECT_NEAR(phi0[i], sum / std::sqrt(9.0), 1e-12);
  }
}

}  // namespace
}  // namespace csod::cs
