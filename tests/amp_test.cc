#include "cs/amp.h"

#include <cmath>
#include <cstring>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "common/simd.h"
#include "cs/bomp.h"
#include "cs/solver.h"
#include "la/vector_ops.h"
#include "obs/telemetry.h"

namespace csod::cs {
namespace {

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

class ScopedParallelismLimit {
 public:
  explicit ScopedParallelismLimit(size_t limit)
      : previous_(GetParallelismLimit()) {
    SetParallelismLimit(limit);
  }
  ~ScopedParallelismLimit() { SetParallelismLimit(previous_); }

 private:
  size_t previous_;
};

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::Level level)
      : previous_(simd::SetLevelForTesting(level)) {}
  ~ScopedSimdLevel() { simd::SetLevelForTesting(previous_); }

 private:
  simd::Level previous_;
};

TEST(AmpTest, RejectsBadInputs) {
  MeasurementMatrix matrix(8, 16, 1);
  AmpOptions options;
  EXPECT_FALSE(RunAmp(matrix, {1.0, 2.0}, options).ok());  // Wrong size.

  std::vector<double> y(8, 1.0);
  options.threshold_multiplier = 0.0;
  EXPECT_FALSE(RunAmp(matrix, y, options).ok());

  options.threshold_multiplier = 1.4;
  options.unthresholded_atoms = {16};  // num_atoms == 16 → out of range.
  EXPECT_FALSE(RunAmp(matrix, y, options).ok());
}

TEST(AmpTest, ZeroMeasurementReturnsZero) {
  MeasurementMatrix matrix(8, 16, 1);
  auto result = RunAmp(matrix, std::vector<double>(8, 0.0), AmpOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.Value().iterations, 0u);
  for (double v : result.Value().x) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(result.Value().final_residual_norm, 0.0);
}

TEST(AmpTest, RecoversExactSupport) {
  const size_t n = 256;
  MeasurementMatrix matrix(128, n, 3);
  std::vector<double> x(n, 0.0);
  x[5] = 12.0;
  x[60] = -9.0;
  x[200] = 20.0;
  auto y = matrix.Multiply(x).MoveValue();

  auto result = RunAmp(matrix, y, AmpOptions{});
  ASSERT_TRUE(result.ok());
  const AmpResult& amp = result.Value();
  // The debias pass re-solves least squares on the detected support, so
  // the planted values come back exactly (up to LS conditioning).
  for (size_t j : {size_t{5}, size_t{60}, size_t{200}}) {
    EXPECT_NEAR(amp.x[j], x[j], 1e-6) << "at " << j;
  }
  EXPECT_LT(amp.final_residual_norm, 1e-6 * la::Norm2(y));
}

TEST(AmpTest, SigmaTraceContracts) {
  const size_t n = 512;
  MeasurementMatrix matrix(160, n, 7);
  Rng rng(19);
  std::vector<double> x(n, 0.0);
  std::set<size_t> planted;
  while (planted.size() < 8) planted.insert(rng.NextBounded(n));
  for (size_t p : planted) {
    x[p] = (rng.NextDouble() + 0.5) * 50.0 *
           ((rng.NextU64() & 1) ? 1.0 : -1.0);
  }
  auto y = matrix.Multiply(x).MoveValue();

  auto result = RunAmp(matrix, y, AmpOptions{});
  ASSERT_TRUE(result.ok());
  const std::vector<double>& trace = result.Value().sigma_trace;
  ASSERT_GE(trace.size(), 2u);
  // The state-evolution noise estimate must contract when AMP converges.
  EXPECT_LT(trace.back(), 1e-3 * trace.front());
}

TEST(AmpTest, IterationBudgetCaps) {
  const size_t n = 256;
  MeasurementMatrix matrix(96, n, 11);
  std::vector<double> x(n, 0.0);
  x[17] = 40.0;
  x[99] = -25.0;
  auto y = matrix.Multiply(x).MoveValue();

  AmpOptions options;
  options.max_iterations = 3;
  options.tolerance = 0.0;  // Never stop early.
  auto result = RunAmp(matrix, y, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.Value().iterations, 3u);
}

TEST(BiasedAmpTest, RecoversUnknownModeData) {
  const size_t n = 256;
  const double b = 5000.0;
  std::vector<double> x(n, b);
  x[10] = 15000.0;
  x[99] = -3000.0;
  x[200] = 11000.0;

  MeasurementMatrix matrix(128, n, 17);
  auto y = matrix.Multiply(x).MoveValue();

  auto result = RunBiasedAmp(matrix, y, AmpOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.Value().bias_selected);
  EXPECT_NEAR(result.Value().mode, b, 1.0);
  std::vector<double> xhat = result.Value().Materialize(n);
  EXPECT_LT(la::DistanceL2(xhat, x) / la::Norm2(x), 1e-4);
}

// Mirrors BiasedCosampTest.AgreesWithBompOnOutlierKeys: the engines must
// agree on which keys are outliers even though their value estimates
// differ in the last ULPs.
TEST(BiasedAmpTest, AgreesWithBompOnOutlierKeys) {
  const size_t n = 400;
  Rng rng(5);
  std::vector<double> x(n, 1800.0);
  std::set<size_t> planted;
  while (planted.size() < 8) planted.insert(rng.NextBounded(n));
  for (size_t p : planted) {
    x[p] = 1800.0 + (rng.NextDouble() + 0.5) * 20000.0 *
                        ((rng.NextU64() & 1) ? 1.0 : -1.0);
  }
  MeasurementMatrix matrix(160, n, 23);
  auto y = matrix.Multiply(x).MoveValue();

  auto amp = RunBiasedAmp(matrix, y, AmpOptions{}).MoveValue();

  BompOptions bomp_options;
  bomp_options.max_iterations = 12;
  auto bomp = RunBomp(matrix, y, bomp_options).MoveValue();

  std::set<size_t> amp_keys;
  for (const auto& e : amp.entries) amp_keys.insert(e.index);
  for (size_t p : planted) {
    EXPECT_TRUE(amp_keys.count(p)) << "AMP missed " << p;
  }
  EXPECT_NEAR(amp.mode, bomp.mode, 1.0);
}

// The determinism contract of DESIGN.md §14: bit-identical recovery at any
// parallelism limit and at the portable SIMD floor vs the native level.
TEST(BiasedAmpTest, BitIdenticalAcrossThreadsAndSimdLevels) {
  const size_t n = 600;
  Rng rng(29);
  std::vector<double> x(n, 3000.0);
  for (size_t i = 0; i < 10; ++i) {
    x[rng.NextBounded(n)] = 3000.0 + (rng.NextDouble() + 0.5) * 25000.0;
  }
  MeasurementMatrix matrix(200, n, 31);
  auto y = matrix.Multiply(x).MoveValue();

  BompResult baseline;
  {
    ScopedParallelismLimit limit(1);
    ScopedSimdLevel level(simd::Level::kPortable);
    baseline = RunBiasedAmp(matrix, y, AmpOptions{}).MoveValue();
  }
  ASSERT_FALSE(baseline.entries.empty());

  for (size_t limit_value : {size_t{1}, size_t{2}, size_t{8}}) {
    for (simd::Level level_value :
         {simd::Level::kPortable, simd::ActiveLevel()}) {
      SCOPED_TRACE("limit " + std::to_string(limit_value) + " level " +
                   std::to_string(static_cast<int>(level_value)));
      ScopedParallelismLimit limit(limit_value);
      ScopedSimdLevel level(level_value);
      auto run = RunBiasedAmp(matrix, y, AmpOptions{}).MoveValue();
      EXPECT_EQ(Bits(run.mode), Bits(baseline.mode));
      ASSERT_EQ(run.entries.size(), baseline.entries.size());
      for (size_t i = 0; i < run.entries.size(); ++i) {
        EXPECT_EQ(run.entries[i].index, baseline.entries[i].index);
        EXPECT_EQ(Bits(run.entries[i].value),
                  Bits(baseline.entries[i].value));
      }
      EXPECT_EQ(run.iterations, baseline.iterations);
      EXPECT_EQ(Bits(run.final_residual_norm),
                Bits(baseline.final_residual_norm));
    }
  }
}

// Attaching a live telemetry sink must not change a single recovered bit,
// and a disabled sink must record nothing (the zero-overhead contract).
TEST(BiasedAmpTest, TelemetryTransparentAndRecords) {
  const size_t n = 300;
  std::vector<double> x(n, 2000.0);
  x[42] = 30000.0;
  x[123] = -9000.0;
  MeasurementMatrix matrix(120, n, 37);
  auto y = matrix.Multiply(x).MoveValue();

  obs::Telemetry live;
  AmpOptions with_options;
  with_options.telemetry = &live;
  auto with = RunBiasedAmp(matrix, y, with_options).MoveValue();
  auto without = RunBiasedAmp(matrix, y, AmpOptions{}).MoveValue();

  EXPECT_EQ(Bits(with.mode), Bits(without.mode));
  ASSERT_EQ(with.entries.size(), without.entries.size());
  for (size_t i = 0; i < with.entries.size(); ++i) {
    EXPECT_EQ(with.entries[i].index, without.entries[i].index);
    EXPECT_EQ(Bits(with.entries[i].value), Bits(without.entries[i].value));
  }

  const std::string snapshot = live.SnapshotJson();
  EXPECT_NE(snapshot.find("amp.recover"), std::string::npos);
  EXPECT_NE(snapshot.find("amp.iterations"), std::string::npos);
  EXPECT_NE(snapshot.find("amp.residual_norm"), std::string::npos);

  obs::Telemetry* disabled = obs::Telemetry::Disabled();
  AmpOptions disabled_options;
  disabled_options.telemetry = disabled;
  auto via_disabled = RunBiasedAmp(matrix, y, disabled_options).MoveValue();
  EXPECT_EQ(Bits(via_disabled.mode), Bits(without.mode));
  EXPECT_EQ(disabled->SnapshotJson(), obs::Telemetry::Disabled()->SnapshotJson());
}

TEST(SolverTest, NamesRoundTrip) {
  for (RecoverySolver solver :
       {RecoverySolver::kOmp, RecoverySolver::kCosamp, RecoverySolver::kFista,
        RecoverySolver::kAmp}) {
    auto parsed = ParseSolverName(SolverName(solver));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.Value(), solver);
  }
  EXPECT_EQ(ParseSolverName("bomp").Value(), RecoverySolver::kOmp);
  EXPECT_FALSE(ParseSolverName("lasso").ok());
}

TEST(SolverTest, OmpDispatchMatchesRunBompBitwise) {
  const size_t n = 300;
  std::vector<double> x(n, 1500.0);
  x[7] = 21000.0;
  x[250] = -4000.0;
  MeasurementMatrix matrix(110, n, 41);
  auto y = matrix.Multiply(x).MoveValue();

  SolverOptions solve;
  solve.iterations = 10;
  auto via_solver = RecoverBiased(matrix, y, solve).MoveValue();

  BompOptions bomp;
  bomp.max_iterations = 10;
  auto direct = RunBomp(matrix, y, bomp).MoveValue();

  EXPECT_EQ(Bits(via_solver.mode), Bits(direct.mode));
  ASSERT_EQ(via_solver.entries.size(), direct.entries.size());
  for (size_t i = 0; i < direct.entries.size(); ++i) {
    EXPECT_EQ(via_solver.entries[i].index, direct.entries[i].index);
    EXPECT_EQ(Bits(via_solver.entries[i].value),
              Bits(direct.entries[i].value));
  }
}

TEST(SolverTest, EveryEngineFindsThePlantedOutlier) {
  const size_t n = 400;
  std::vector<double> x(n, 2500.0);
  x[111] = 60000.0;
  MeasurementMatrix matrix(140, n, 43);
  auto y = matrix.Multiply(x).MoveValue();

  for (RecoverySolver solver :
       {RecoverySolver::kOmp, RecoverySolver::kCosamp, RecoverySolver::kFista,
        RecoverySolver::kAmp}) {
    SCOPED_TRACE(SolverName(solver));
    SolverOptions solve;
    solve.solver = solver;
    solve.iterations = 18;
    auto result = RecoverBiased(matrix, y, solve);
    ASSERT_TRUE(result.ok());
    bool found = false;
    for (const auto& e : result.Value().entries) {
      if (e.index == 111) found = true;
    }
    EXPECT_TRUE(found) << "engine missed the planted outlier";
    EXPECT_NEAR(result.Value().mode, 2500.0, 250.0);
  }
}

}  // namespace
}  // namespace csod::cs
