#include "cs/cosamp.h"

#include <cmath>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "cs/measurement_matrix.h"
#include "la/vector_ops.h"

namespace csod::cs {
namespace {

TEST(CosampTest, RejectsBadInputs) {
  MeasurementMatrix matrix(8, 16, 1);
  MatrixDictionary dict(&matrix);
  CosampOptions options;
  std::vector<double> y(8, 1.0);
  EXPECT_FALSE(RunCosamp(dict, y, options).ok());  // sparsity == 0.
  options.sparsity = 2;
  EXPECT_FALSE(RunCosamp(dict, {1.0, 2.0}, options).ok());  // wrong size.
}

TEST(CosampTest, ZeroMeasurementReturnsEmpty) {
  MeasurementMatrix matrix(8, 16, 1);
  MatrixDictionary dict(&matrix);
  CosampOptions options;
  options.sparsity = 2;
  auto result = RunCosamp(dict, std::vector<double>(8, 0.0), options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.Value().selected.empty());
}

TEST(CosampTest, RecoversExactSupport) {
  const size_t n = 128;
  MeasurementMatrix matrix(48, n, 3);
  std::vector<double> x(n, 0.0);
  x[5] = 12.0;
  x[60] = -9.0;
  x[100] = 20.0;
  auto y = matrix.Multiply(x).MoveValue();

  MatrixDictionary dict(&matrix);
  CosampOptions options;
  options.sparsity = 3;
  auto result = RunCosamp(dict, y, options);
  ASSERT_TRUE(result.ok());
  std::set<size_t> support(result.Value().selected.begin(),
                           result.Value().selected.end());
  EXPECT_EQ(support, (std::set<size_t>{5, 60, 100}));
  for (size_t i = 0; i < result.Value().selected.size(); ++i) {
    EXPECT_NEAR(result.Value().coefficients[i],
                x[result.Value().selected[i]], 1e-6);
  }
  EXPECT_LT(result.Value().final_residual_norm, 1e-6 * la::Norm2(y));
}

// Property sweep: exact recovery across sizes with generous M.
class CosampRecoveryTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, uint64_t>> {};

TEST_P(CosampRecoveryTest, ExactRecovery) {
  const auto [n, s, seed] = GetParam();
  const size_t m = std::min<size_t>(
      n, static_cast<size_t>(6.0 * s * std::log(static_cast<double>(n))) + 8);
  MeasurementMatrix matrix(m, n, seed);
  Rng rng(seed * 17 + 3);
  std::vector<double> x(n, 0.0);
  std::set<size_t> planted;
  while (planted.size() < s) planted.insert(rng.NextBounded(n));
  for (size_t p : planted) {
    x[p] = (rng.NextDouble() + 0.5) * 100.0 *
           ((rng.NextU64() & 1) ? 1.0 : -1.0);
  }
  auto y = matrix.Multiply(x).MoveValue();

  MatrixDictionary dict(&matrix);
  CosampOptions options;
  options.sparsity = s;
  auto result = RunCosamp(dict, y, options);
  ASSERT_TRUE(result.ok());
  std::set<size_t> recovered(result.Value().selected.begin(),
                             result.Value().selected.end());
  EXPECT_EQ(recovered, planted);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CosampRecoveryTest,
    ::testing::Values(std::make_tuple(100, 3, 1), std::make_tuple(256, 6, 2),
                      std::make_tuple(512, 10, 3),
                      std::make_tuple(1000, 15, 4)));

TEST(BiasedCosampTest, RecoversUnknownModeData) {
  const size_t n = 256;
  const double b = 5000.0;
  std::vector<double> x(n, b);
  x[10] = 15000.0;
  x[99] = -3000.0;
  x[200] = 11000.0;

  MeasurementMatrix matrix(110, n, 17);
  auto y = matrix.Multiply(x).MoveValue();

  CosampOptions options;
  options.sparsity = 3;
  auto result = RunBiasedCosamp(matrix, y, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.Value().bias_selected);
  EXPECT_NEAR(result.Value().mode, b, 1e-4);
  std::vector<double> xhat = result.Value().Materialize(n);
  EXPECT_LT(la::DistanceL2(xhat, x) / la::Norm2(x), 1e-6);
}

TEST(BiasedCosampTest, AgreesWithBompOnOutlierKeys) {
  const size_t n = 400;
  Rng rng(5);
  std::vector<double> x(n, 1800.0);
  std::set<size_t> planted;
  while (planted.size() < 8) planted.insert(rng.NextBounded(n));
  for (size_t p : planted) {
    x[p] = 1800.0 + (rng.NextDouble() + 0.5) * 20000.0 *
                        ((rng.NextU64() & 1) ? 1.0 : -1.0);
  }
  MeasurementMatrix matrix(160, n, 23);
  auto y = matrix.Multiply(x).MoveValue();

  CosampOptions cosamp_options;
  cosamp_options.sparsity = 8;
  auto cosamp = RunBiasedCosamp(matrix, y, cosamp_options).MoveValue();

  BompOptions bomp_options;
  bomp_options.max_iterations = 12;
  auto bomp = RunBomp(matrix, y, bomp_options).MoveValue();

  std::set<size_t> cosamp_keys;
  for (const auto& e : cosamp.entries) cosamp_keys.insert(e.index);
  std::set<size_t> bomp_keys;
  for (const auto& e : bomp.entries) bomp_keys.insert(e.index);
  for (size_t p : planted) {
    EXPECT_TRUE(cosamp_keys.count(p)) << "CoSaMP missed " << p;
    EXPECT_TRUE(bomp_keys.count(p)) << "BOMP missed " << p;
  }
  EXPECT_NEAR(cosamp.mode, bomp.mode, 1.0);
}

}  // namespace
}  // namespace csod::cs
