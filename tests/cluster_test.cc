#include "dist/cluster.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "dist/comm.h"

namespace csod::dist {
namespace {

cs::SparseSlice MakeSlice(std::vector<size_t> indices,
                          std::vector<double> values) {
  cs::SparseSlice slice;
  slice.indices = std::move(indices);
  slice.values = std::move(values);
  return slice;
}

TEST(ClusterTest, AddNodesAndAggregate) {
  Cluster cluster(5);
  ASSERT_TRUE(cluster.AddNode(MakeSlice({0, 2}, {1.0, 3.0})).ok());
  ASSERT_TRUE(cluster.AddNode(MakeSlice({2, 4}, {-1.0, 2.0})).ok());
  EXPECT_EQ(cluster.num_nodes(), 2u);
  EXPECT_EQ(cluster.GlobalAggregate(),
            (std::vector<double>{1.0, 0.0, 2.0, 0.0, 2.0}));
}

TEST(ClusterTest, AddNodeRejectsOutOfRangeKey) {
  Cluster cluster(3);
  auto result = cluster.AddNode(MakeSlice({5}, {1.0}));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(cluster.num_nodes(), 0u);
}

TEST(ClusterTest, RejectsNonFiniteValues) {
  Cluster cluster(3);
  EXPECT_FALSE(
      cluster.AddNode(MakeSlice({0}, {std::nan("")})).ok());
  EXPECT_FALSE(
      cluster
          .AddNode(MakeSlice({1}, {std::numeric_limits<double>::infinity()}))
          .ok());
  auto id = cluster.AddNode(MakeSlice({0}, {1.0}));
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(
      cluster.UpdateNode(id.Value(), MakeSlice({0}, {std::nan("")})).ok());
}

TEST(ClusterTest, RejectsMismatchedSlice) {
  Cluster cluster(3);
  cs::SparseSlice bad;
  bad.indices = {0, 1};
  bad.values = {1.0};
  EXPECT_FALSE(cluster.AddNode(bad).ok());
}

TEST(ClusterTest, RemoveNodeUpdatesAggregate) {
  Cluster cluster(2);
  auto id1 = cluster.AddNode(MakeSlice({0}, {10.0}));
  auto id2 = cluster.AddNode(MakeSlice({1}, {20.0}));
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE(cluster.RemoveNode(id1.Value()).ok());
  EXPECT_EQ(cluster.num_nodes(), 1u);
  EXPECT_EQ(cluster.GlobalAggregate(), (std::vector<double>{0.0, 20.0}));
  EXPECT_FALSE(cluster.RemoveNode(id1.Value()).ok());  // Already gone.
}

TEST(ClusterTest, UpdateNodeReplacesSlice) {
  Cluster cluster(2);
  auto id = cluster.AddNode(MakeSlice({0}, {1.0}));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(cluster.UpdateNode(id.Value(), MakeSlice({1}, {5.0})).ok());
  EXPECT_EQ(cluster.GlobalAggregate(), (std::vector<double>{0.0, 5.0}));
  EXPECT_FALSE(cluster.UpdateNode(99, MakeSlice({0}, {1.0})).ok());
  EXPECT_FALSE(cluster.UpdateNode(id.Value(), MakeSlice({9}, {1.0})).ok());
}

TEST(ClusterTest, SliceAccess) {
  Cluster cluster(4);
  auto id = cluster.AddNode(MakeSlice({3}, {7.0}));
  ASSERT_TRUE(id.ok());
  auto slice = cluster.Slice(id.Value());
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice.Value()->indices, (std::vector<size_t>{3}));
  EXPECT_FALSE(cluster.Slice(42).ok());
}

TEST(ClusterTest, NodeIdsAscendingAndStable) {
  Cluster cluster(1);
  auto a = cluster.AddNode(MakeSlice({}, {}));
  auto b = cluster.AddNode(MakeSlice({}, {}));
  auto c = cluster.AddNode(MakeSlice({}, {}));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(cluster.RemoveNode(b.Value()).ok());
  const std::vector<NodeId> ids = cluster.NodeIds();
  EXPECT_EQ(ids, (std::vector<NodeId>{a.Value(), c.Value()}));
  // Ids are never reused.
  auto d = cluster.AddNode(MakeSlice({}, {}));
  ASSERT_TRUE(d.ok());
  EXPECT_GT(d.Value(), c.Value());
}

TEST(CommStatsTest, AccountsBytesAndPhases) {
  CommStats comm;
  comm.BeginRound();
  comm.Account("measurements", 100, kMeasurementBytes);
  comm.Account("measurements", 100, kMeasurementBytes);
  comm.BeginRound();
  comm.Account("kv", 10, kKeyValueBytes);
  EXPECT_EQ(comm.rounds(), 2u);
  EXPECT_EQ(comm.tuples_total(), 210u);
  EXPECT_EQ(comm.bytes_total(), 200u * 8 + 10u * 12);
  EXPECT_EQ(comm.bytes_by_phase().at("measurements"), 1600u);
  EXPECT_EQ(comm.bytes_by_phase().at("kv"), 120u);
}

}  // namespace
}  // namespace csod::dist
