#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"

namespace csod {
namespace {

// Restores the global parallelism limit after each test.
class ThreadPoolTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetParallelismLimit(
        std::max<size_t>(1, std::thread::hardware_concurrency()));
  }
};

TEST_F(ThreadPoolTest, WorkersPersistAcrossJobs) {
  SetParallelismLimit(4);
  ThreadPool& pool = ThreadPool::Global();

  const uint64_t jobs_before = pool.jobs_dispatched();
  ParallelFor(4000, 1, [](size_t, size_t) {});
  const uint64_t jobs_after_first = pool.jobs_dispatched();
  EXPECT_GT(jobs_after_first, jobs_before);

  const size_t workers_after_first = pool.worker_count();
  EXPECT_GE(workers_after_first, 1u);

  // A second job must reuse the parked workers, not spawn a fresh set.
  ParallelFor(4000, 1, [](size_t, size_t) {});
  EXPECT_EQ(pool.worker_count(), workers_after_first);
  EXPECT_GT(pool.jobs_dispatched(), jobs_after_first);
}

TEST_F(ThreadPoolTest, GrowsToHigherChunkCount) {
  SetParallelismLimit(2);
  ParallelFor(2000, 1, [](size_t, size_t) {});
  ThreadPool& pool = ThreadPool::Global();
  const size_t small = pool.worker_count();

  SetParallelismLimit(6);
  ParallelFor(6000, 1, [](size_t, size_t) {});
  EXPECT_GE(pool.worker_count(), small);
  // Shrinking the limit afterwards keeps the workers parked (harmless) but
  // dispatches fewer chunks; the pool never shrinks.
  SetParallelismLimit(2);
  ParallelFor(2000, 1, [](size_t, size_t) {});
  EXPECT_GE(pool.worker_count(), small);
}

TEST_F(ThreadPoolTest, NestedParallelForRunsSeriallyAndCorrectly) {
  SetParallelismLimit(4);
  const size_t outer = 400;
  const size_t inner = 300;
  std::vector<std::atomic<int>> counts(outer * inner);
  for (auto& c : counts) c.store(0);
  ParallelFor(outer, 1, [&](size_t obegin, size_t oend) {
    for (size_t o = obegin; o < oend; ++o) {
      // Nested call: must degrade to serial on this thread (whether it is a
      // pool worker or the dispatcher holding dispatch_mu_) without
      // deadlocking, and still cover its whole range exactly once.
      ParallelFor(inner, 1, [&](size_t ibegin, size_t iend) {
        for (size_t i = ibegin; i < iend; ++i) {
          counts[o * inner + i].fetch_add(1);
        }
      });
    }
  });
  for (size_t i = 0; i < counts.size(); ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "i=" << i;
  }
}

TEST_F(ThreadPoolTest, InWorkerFalseOnCallerThread) {
  EXPECT_FALSE(ThreadPool::InWorker());
  SetParallelismLimit(4);
  std::atomic<int> worker_sightings{0};
  ParallelFor(4000, 1, [&](size_t, size_t) {
    if (ThreadPool::InWorker()) worker_sightings.fetch_add(1);
  });
  // The dispatching thread participates too, so not every chunk runs in a
  // worker; the flag must still be false back on the caller.
  EXPECT_FALSE(ThreadPool::InWorker());
  (void)worker_sightings;  // May be zero on single-core machines.
}

TEST_F(ThreadPoolTest, ChunkGeometryIsExactlyAsRequested) {
  ThreadPool& pool = ThreadPool::Global();
  const size_t count = 1001;
  const size_t chunk_count = 4;
  const size_t chunk_size = 251;  // ceil(1001 / 4)
  struct Ctx {
    std::vector<std::atomic<size_t>> begins;
    std::vector<std::atomic<size_t>> ends;
    explicit Ctx(size_t n) : begins(n), ends(n) {}
  } ctx(chunk_count);
  pool.RunChunked(
      [](void* raw, size_t chunk, size_t begin, size_t end) {
        auto* c = static_cast<Ctx*>(raw);
        c->begins[chunk].store(begin);
        c->ends[chunk].store(end);
      },
      &ctx, count, chunk_count, chunk_size);
  for (size_t c = 0; c < chunk_count; ++c) {
    EXPECT_EQ(ctx.begins[c].load(), c * chunk_size);
    EXPECT_EQ(ctx.ends[c].load(), std::min(count, (c + 1) * chunk_size));
  }
}

TEST_F(ThreadPoolTest, ManyConsecutiveJobsSumCorrectly) {
  SetParallelismLimit(4);
  const size_t count = 5000;
  std::vector<double> values(count);
  std::iota(values.begin(), values.end(), 1.0);
  const double expected =
      static_cast<double>(count) * static_cast<double>(count + 1) / 2.0;
  for (int round = 0; round < 50; ++round) {
    const size_t chunk_count = ParallelChunkCount(count, 64);
    std::vector<double> partials(chunk_count, 0.0);
    ParallelForChunks(count, chunk_count,
                      [&](size_t chunk, size_t begin, size_t end) {
                        double acc = 0.0;
                        for (size_t i = begin; i < end; ++i) acc += values[i];
                        partials[chunk] = acc;
                      });
    double total = 0.0;
    for (double p : partials) total += p;
    ASSERT_EQ(total, expected) << "round " << round;
  }
}

}  // namespace
}  // namespace csod
