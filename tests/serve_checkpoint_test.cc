// Tests of checkpoint/restore (serve/checkpoint.h): restore republishes
// bit-identically, a restored detector continues exactly like one that
// never died, torn checkpoints are rejected with DataLoss, stall/backlog
// state survives, and geometry mismatches are refused.
#include "serve/checkpoint.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/net.h"
#include "serve/service.h"
#include "serve/streaming_detector.h"
#include "sim/buggify.h"

namespace csod::serve {
namespace {

StreamingDetectorOptions SmallOptions(size_t window = 3, size_t shards = 4) {
  StreamingDetectorOptions options;
  options.n = 400;
  options.m = 150;
  options.seed = 5;
  options.iterations = 12;
  options.window_epochs = window;
  options.num_shards = shards;
  return options;
}

void SeededBatch(uint64_t seed, size_t n, std::vector<size_t>* keys,
                 std::vector<double>* deltas) {
  keys->clear();
  deltas->clear();
  uint64_t x = seed;
  for (size_t i = 0; i < 50; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    keys->push_back((x >> 33) % n);
    deltas->push_back(1.0 + static_cast<double>((x >> 20) % 8));
  }
}

void ExpectSnapshotsBitIdentical(
    const std::shared_ptr<const SketchSnapshot>& a,
    const std::shared_ptr<const SketchSnapshot>& b) {
  ASSERT_EQ(a == nullptr, b == nullptr);
  if (a == nullptr) return;
  EXPECT_EQ(a->version, b->version);
  EXPECT_EQ(a->first_epoch, b->first_epoch);
  EXPECT_EQ(a->last_epoch, b->last_epoch);
  EXPECT_EQ(a->epochs_covered, b->epochs_covered);
  EXPECT_EQ(a->events, b->events);
  EXPECT_EQ(a->stalled_shards, b->stalled_shards);
  EXPECT_EQ(a->y, b->y);  // Bitwise double equality.
}

// Builds a detector with a few epochs of history plus an in-progress epoch
// with data — the general mid-stream state a checkpoint must capture.
std::unique_ptr<StreamingDetector> BuildMidStream(
    const StreamingDetectorOptions& options) {
  auto detector = StreamingDetector::Create(options).MoveValue();
  detector->AdvanceEpoch();
  std::vector<size_t> keys;
  std::vector<double> deltas;
  for (uint64_t epoch = 0; epoch < 4; ++epoch) {
    for (uint64_t b = 0; b < 2; ++b) {
      SeededBatch(epoch * 31 + b, options.n, &keys, &deltas);
      EXPECT_TRUE(detector->IngestBatch(keys, deltas).ok());
    }
    detector->AdvanceEpoch();
  }
  // Partial data in the in-progress epoch.
  SeededBatch(991, options.n, &keys, &deltas);
  EXPECT_TRUE(detector->IngestBatch(keys, deltas).ok());
  return detector;
}

TEST(CheckpointTest, RestoreRepublishesBitIdentically) {
  const auto options = SmallOptions();
  auto original = BuildMidStream(options);
  const std::string frame =
      EncodeCheckpoint(options, original->CheckpointState()).MoveValue();

  auto restored = RestoreDetector(frame, options).MoveValue();
  EXPECT_EQ(restored->current_epoch(), original->current_epoch());
  EXPECT_EQ(restored->snapshot_version(), original->snapshot_version());
  EXPECT_EQ(restored->started(), original->started());
  // The restored detector republishes the checkpointed snapshot exactly.
  ExpectSnapshotsBitIdentical(restored->Snapshot(), original->Snapshot());
  // And the next publication (advancing both) is bit-identical too: the
  // in-progress epoch's partial sketch survived the restart.
  original->AdvanceEpoch();
  restored->AdvanceEpoch();
  ExpectSnapshotsBitIdentical(restored->Snapshot(), original->Snapshot());
}

TEST(CheckpointTest, RestoredDetectorContinuesExactly) {
  const auto options = SmallOptions();
  auto original = BuildMidStream(options);
  const std::string frame =
      EncodeCheckpoint(options, original->CheckpointState()).MoveValue();
  auto restored = RestoreDetector(frame, options).MoveValue();

  // Feed both the same continuation; every publication must stay
  // bit-identical (versions continue from the checkpointed counter).
  std::vector<size_t> keys;
  std::vector<double> deltas;
  for (uint64_t epoch = 0; epoch < 3; ++epoch) {
    for (uint64_t b = 0; b < 2; ++b) {
      SeededBatch(7000 + epoch * 13 + b, options.n, &keys, &deltas);
      ASSERT_TRUE(original->IngestBatch(keys, deltas).ok());
      ASSERT_TRUE(restored->IngestBatch(keys, deltas).ok());
    }
    original->AdvanceEpoch();
    restored->AdvanceEpoch();
    ExpectSnapshotsBitIdentical(restored->Snapshot(), original->Snapshot());
  }
  auto original_answer = original->QueryOutliers(3).MoveValue();
  auto restored_answer = restored->QueryOutliers(3).MoveValue();
  EXPECT_EQ(original_answer.mode, restored_answer.mode);
  ASSERT_EQ(original_answer.outliers.size(), restored_answer.outliers.size());
  for (size_t i = 0; i < original_answer.outliers.size(); ++i) {
    EXPECT_EQ(original_answer.outliers[i].value,
              restored_answer.outliers[i].value);
  }
}

TEST(CheckpointTest, StallAndBacklogSurviveRestore) {
  const auto options = SmallOptions(/*window=*/3, /*shards=*/4);
  auto original = BuildMidStream(options);
  ASSERT_TRUE(original->SetShardStalled(2, true).ok());
  std::vector<size_t> keys;
  std::vector<double> deltas;
  SeededBatch(55, options.n, &keys, &deltas);
  ASSERT_TRUE(original->IngestBatch(keys, deltas).ok());
  ASSERT_GT(original->backlog_events(), 0u);

  const std::string frame =
      EncodeCheckpoint(options, original->CheckpointState()).MoveValue();
  auto restored = RestoreDetector(frame, options).MoveValue();
  EXPECT_EQ(restored->backlog_events(), original->backlog_events());

  // Unstalling both replays identical backlogs: publications stay equal.
  ASSERT_TRUE(original->SetShardStalled(2, false).ok());
  ASSERT_TRUE(restored->SetShardStalled(2, false).ok());
  EXPECT_EQ(restored->backlog_events(), 0u);
  original->AdvanceEpoch();
  restored->AdvanceEpoch();
  ExpectSnapshotsBitIdentical(restored->Snapshot(), original->Snapshot());
}

TEST(CheckpointTest, RestoreThenQueryPreservesStaleness) {
  // A tumbling window mid-cycle: staleness > 1 epoch must survive the
  // restart (the restored service answers from the same snapshot, at the
  // same distance from the in-progress epoch).
  auto options = SmallOptions(/*window=*/2);
  options.window = WindowKind::kTumbling;
  auto original = StreamingDetector::Create(options).MoveValue();
  original->AdvanceEpoch();
  std::vector<size_t> keys;
  std::vector<double> deltas;
  for (uint64_t epoch = 0; epoch < 3; ++epoch) {
    SeededBatch(epoch, options.n, &keys, &deltas);
    ASSERT_TRUE(original->IngestBatch(keys, deltas).ok());
    original->AdvanceEpoch();
  }
  // Epoch 3 in progress; snapshot covers {0,1}: staleness is 2 epochs.
  auto snapshot = original->Snapshot();
  ASSERT_NE(snapshot, nullptr);
  const uint64_t staleness =
      original->current_epoch() - snapshot->last_epoch;
  EXPECT_EQ(staleness, 2u);

  const std::string frame =
      EncodeCheckpoint(options, original->CheckpointState()).MoveValue();
  auto restored = RestoreDetector(frame, options).MoveValue();
  auto restored_snapshot = restored->Snapshot();
  ASSERT_NE(restored_snapshot, nullptr);
  EXPECT_EQ(restored->current_epoch() - restored_snapshot->last_epoch,
            staleness);
  // The restored detector answers queries from that same snapshot.
  auto result = restored->QueryOutliers(2);
  ASSERT_TRUE(result.ok());
  // Never underflows: the snapshot can only trail the clock.
  EXPECT_GE(restored->current_epoch(), restored_snapshot->last_epoch);
}

TEST(CheckpointTest, TornOrCorruptCheckpointIsDataLoss) {
  const auto options = SmallOptions();
  auto original = BuildMidStream(options);
  const std::string frame =
      EncodeCheckpoint(options, original->CheckpointState()).MoveValue();

  // Torn at any point (a crash mid-write): DataLoss, never a bad restore.
  for (size_t keep : {frame.size() / 4, frame.size() / 2, frame.size() - 1}) {
    const std::string torn = frame.substr(0, keep);
    EXPECT_EQ(DecodeCheckpoint(torn).status().code(), StatusCode::kDataLoss)
        << "kept " << keep << " bytes";
  }
  // A flipped bit deep in the payload: the outer checksum catches it.
  std::string corrupt = frame;
  corrupt[frame.size() / 2] = static_cast<char>(corrupt[frame.size() / 2] ^ 1);
  EXPECT_EQ(DecodeCheckpoint(corrupt).status().code(), StatusCode::kDataLoss);
  // The intact frame still decodes (the copies above didn't slice state).
  EXPECT_TRUE(DecodeCheckpoint(frame).ok());
}

TEST(CheckpointTest, BuggifyMidCheckpointCrashTearsDeterministically) {
  sim::BuggifyOptions buggify;
  buggify.seed = 9;
  buggify.activation_probability = 1.0;
  buggify.fire_probability = 1.0;
  sim::BuggifyEnable(buggify);
  const auto options = SmallOptions();
  auto detector = BuildMidStream(options);
  // With the section firing, the encoded frame is truncated — exactly what
  // a crash mid-write leaves behind. Decode must refuse it.
  const std::string torn =
      EncodeCheckpoint(options, detector->CheckpointState()).MoveValue();
  EXPECT_EQ(DecodeCheckpoint(torn).status().code(), StatusCode::kDataLoss);
  sim::BuggifyDisable();
  // Disarmed, the same state round-trips.
  const std::string intact =
      EncodeCheckpoint(options, detector->CheckpointState()).MoveValue();
  EXPECT_TRUE(DecodeCheckpoint(intact).ok());
}

TEST(CheckpointTest, GeometryMismatchIsRefused) {
  const auto options = SmallOptions();
  auto original = BuildMidStream(options);
  const std::string frame =
      EncodeCheckpoint(options, original->CheckpointState()).MoveValue();

  auto wrong = options;
  wrong.n = 500;
  EXPECT_FALSE(RestoreDetector(frame, wrong).ok());
  wrong = options;
  wrong.m = 100;
  EXPECT_FALSE(RestoreDetector(frame, wrong).ok());
  wrong = options;
  wrong.seed = 6;
  EXPECT_FALSE(RestoreDetector(frame, wrong).ok());
  wrong = options;
  wrong.num_shards = 8;
  EXPECT_FALSE(RestoreDetector(frame, wrong).ok());
  wrong = options;
  wrong.window_epochs = 5;
  EXPECT_FALSE(RestoreDetector(frame, wrong).ok());
  // Runtime-only knobs (solver, iterations, telemetry) may differ freely.
  auto runtime = options;
  runtime.iterations = 20;
  runtime.solver = cs::RecoverySolver::kCosamp;
  EXPECT_TRUE(RestoreDetector(frame, runtime).ok());
}

TEST(CheckpointTest, FetchedOverTheWireEqualsLocalEncoding) {
  const auto options = SmallOptions();
  StreamingService service;
  ASSERT_TRUE(service.AddTenant("t", options).ok());
  NetServer server(&service);
  LoopbackTransport transport(&server);
  NetClient client(&transport);
  ASSERT_TRUE(client.AdvanceTo("t", 0).ok());
  std::vector<size_t> keys;
  std::vector<double> deltas;
  SeededBatch(3, options.n, &keys, &deltas);
  ASSERT_TRUE(client.Ingest("t", keys, deltas).ok());
  ASSERT_TRUE(client.AdvanceTo("t", 1).ok());

  const std::string over_wire = client.FetchCheckpoint("t").MoveValue();
  auto detector = service.Tenant("t").MoveValue();
  const std::string local =
      EncodeCheckpoint(detector->options(), detector->CheckpointState())
          .MoveValue();
  // Byte-identical: the RPC response *is* the checkpoint frame.
  EXPECT_EQ(over_wire, local);
  auto restored = RestoreDetector(over_wire, options).MoveValue();
  ExpectSnapshotsBitIdentical(restored->Snapshot(), detector->Snapshot());
}

}  // namespace
}  // namespace csod::serve
