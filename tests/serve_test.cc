#include "serve/service.h"
#include "serve/streaming_detector.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "core/windowed_detector.h"
#include "obs/telemetry.h"

namespace csod::serve {
namespace {

struct ScopedParallelismLimit {
  explicit ScopedParallelismLimit(size_t limit)
      : previous_(GetParallelismLimit()) {
    SetParallelismLimit(limit);
  }
  ~ScopedParallelismLimit() { SetParallelismLimit(previous_); }
  size_t previous_;
};

StreamingDetectorOptions SmallOptions(size_t window = 3, size_t shards = 4) {
  StreamingDetectorOptions options;
  options.n = 400;
  options.m = 150;
  options.seed = 5;
  options.iterations = 12;
  options.window_epochs = window;
  options.num_shards = shards;
  return options;
}

/// One seeded batch of keyed deltas: a quiet baseline plus one spike.
struct Batch {
  std::vector<size_t> keys;
  std::vector<double> deltas;
};

std::vector<Batch> SeededBatches(size_t num_batches, size_t n,
                                 uint64_t seed) {
  std::minstd_rand rng(static_cast<unsigned>(seed));
  std::vector<Batch> batches(num_batches);
  for (size_t b = 0; b < num_batches; ++b) {
    Batch& batch = batches[b];
    const size_t events = 20 + rng() % 40;
    for (size_t i = 0; i < events; ++i) {
      batch.keys.push_back(rng() % n);
      batch.deltas.push_back(1.0 + static_cast<double>(rng() % 8));
    }
    // A recurring heavy key so detection has a stable answer.
    batch.keys.push_back(7);
    batch.deltas.push_back(5000.0);
  }
  return batches;
}

/// The reference ingestion of one batch: partitioned into per-shard slices
/// by ShardOfKey and ingested shard-by-shard in shard order — including
/// empty shards — exactly as documented in the determinism contract.
/// Shards in `stalled` are withheld and appended to `withheld` instead.
void ReferenceIngest(core::WindowedOutlierDetector* detector,
                     const Batch& batch, size_t num_shards,
                     const std::vector<bool>* stalled = nullptr,
                     std::vector<cs::SparseSlice>* withheld = nullptr) {
  std::vector<cs::SparseSlice> slices(num_shards);
  for (size_t i = 0; i < batch.keys.size(); ++i) {
    const uint32_t shard =
        StreamingDetector::ShardOfKey(batch.keys[i], num_shards);
    slices[shard].indices.push_back(batch.keys[i]);
    slices[shard].values.push_back(batch.deltas[i]);
  }
  for (size_t s = 0; s < num_shards; ++s) {
    if (stalled != nullptr && (*stalled)[s]) {
      if (slices[s].nnz() > 0 && withheld != nullptr) {
        withheld->push_back(std::move(slices[s]));
      }
      continue;
    }
    ASSERT_TRUE(detector->Ingest(slices[s]).ok());
  }
}

TEST(StreamingDetectorTest, CreateValidates) {
  StreamingDetectorOptions bad;
  EXPECT_FALSE(StreamingDetector::Create(bad).ok());
  bad.n = 10;
  EXPECT_FALSE(StreamingDetector::Create(bad).ok());
  bad.m = 4;
  EXPECT_FALSE(StreamingDetector::Create(bad).ok());
  bad.window_epochs = 2;
  EXPECT_TRUE(StreamingDetector::Create(bad).ok());
  bad.num_shards = 0;
  EXPECT_FALSE(StreamingDetector::Create(bad).ok());
  bad.num_shards = 2;
  bad.epoch_ticks = 0;
  EXPECT_FALSE(StreamingDetector::Create(bad).ok());
}

TEST(StreamingDetectorTest, IngestBeforeFirstEpochFails) {
  auto detector = StreamingDetector::Create(SmallOptions()).MoveValue();
  std::vector<size_t> keys = {1};
  std::vector<double> deltas = {2.0};
  EXPECT_FALSE(detector->IngestBatch(keys, deltas).ok());
  detector->AdvanceEpoch();
  EXPECT_TRUE(detector->IngestBatch(keys, deltas).ok());
}

TEST(StreamingDetectorTest, IngestValidatesKeysAndSizes) {
  auto detector = StreamingDetector::Create(SmallOptions()).MoveValue();
  detector->AdvanceEpoch();
  std::vector<size_t> keys = {400};  // == N, out of range.
  std::vector<double> deltas = {1.0};
  EXPECT_FALSE(detector->IngestBatch(keys, deltas).ok());
  EXPECT_FALSE(detector->IngestBatch({1, 2}, {1.0}).ok());
  EXPECT_TRUE(detector->IngestBatch({}, {}).ok());  // Empty batch is fine.
}

TEST(StreamingDetectorTest, NoSnapshotBeforeFirstClosedEpoch) {
  auto detector = StreamingDetector::Create(SmallOptions()).MoveValue();
  EXPECT_EQ(detector->Snapshot(), nullptr);
  EXPECT_FALSE(detector->QueryOutliers(2).ok());

  detector->AdvanceEpoch();  // Opens epoch 0; nothing closed yet.
  EXPECT_EQ(detector->Snapshot(), nullptr);
  EXPECT_FALSE(detector->QueryOutliers(2).ok());

  detector->AdvanceEpoch();  // Closes epoch 0 -> first publication.
  auto snapshot = detector->Snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->version, 1u);
  EXPECT_EQ(snapshot->first_epoch, 0u);
  EXPECT_EQ(snapshot->last_epoch, 0u);
  EXPECT_EQ(snapshot->epochs_covered, 1u);
  EXPECT_TRUE(detector->QueryOutliers(2).ok());
}

TEST(StreamingDetectorTest, SnapshotWindowSlidesAndCountsEvents) {
  auto detector =
      StreamingDetector::Create(SmallOptions(/*window=*/2)).MoveValue();
  detector->AdvanceEpoch();  // Epoch 0.
  ASSERT_TRUE(detector->IngestBatch({1, 2, 3}, {1.0, 1.0, 1.0}).ok());
  detector->AdvanceEpoch();  // Epoch 1; snapshot v1 covers {0}.
  ASSERT_TRUE(detector->IngestBatch({4, 5}, {1.0, 1.0}).ok());
  detector->AdvanceEpoch();  // Epoch 2; snapshot v2 covers {0, 1}.
  detector->AdvanceEpoch();  // Epoch 3; snapshot v3 covers {1, 2}.

  auto snapshot = detector->Snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(snapshot->version, 3u);
  EXPECT_EQ(snapshot->first_epoch, 1u);
  EXPECT_EQ(snapshot->last_epoch, 2u);
  EXPECT_EQ(snapshot->epochs_covered, 2u);
  EXPECT_EQ(snapshot->events, 2u);  // Epoch 0's three events slid out.
  EXPECT_TRUE(snapshot->stalled_shards.empty());
}

// The tentpole contract: the published window measurement and the
// detection answers are bit-identical to a WindowedOutlierDetector fed
// the same per-(batch, shard) slices, at every parallelism limit.
TEST(StreamingDetectorTest, BitIdenticalToWindowedReferenceAcrossLimits) {
  constexpr size_t kWindow = 3;
  constexpr size_t kShards = 4;
  constexpr size_t kEpochs = 5;
  constexpr size_t kBatchesPerEpoch = 3;
  const auto batches =
      SeededBatches(kEpochs * kBatchesPerEpoch, 400, /*seed=*/99);

  std::vector<std::vector<double>> snapshot_y_per_limit;
  std::vector<outlier::OutlierSet> answers_per_limit;

  for (size_t limit : {size_t{1}, size_t{2}, size_t{8}}) {
    ScopedParallelismLimit scoped(limit);

    auto streaming =
        StreamingDetector::Create(SmallOptions(kWindow, kShards)).MoveValue();
    // Lockstep reference ring: W closed epochs + the in-progress one.
    core::WindowedDetectorOptions wopts;
    wopts.n = 400;
    wopts.m = 150;
    wopts.seed = 5;
    wopts.iterations = 12;
    wopts.window_epochs = kWindow + 1;
    auto lockstep = core::WindowedOutlierDetector::Create(wopts).MoveValue();
    // Lagging reference: window = W, left un-advanced at the end so its
    // ring is exactly the window the final snapshot covers — the "batch
    // Detect over the same window" of the acceptance criterion.
    wopts.window_epochs = kWindow;
    auto lagging = core::WindowedOutlierDetector::Create(wopts).MoveValue();

    size_t next_batch = 0;
    for (size_t epoch = 0; epoch < kEpochs; ++epoch) {
      streaming->AdvanceEpoch();
      lockstep->AdvanceEpoch();
      lagging->AdvanceEpoch();
      for (size_t b = 0; b < kBatchesPerEpoch; ++b) {
        const Batch& batch = batches[next_batch++];
        ASSERT_TRUE(streaming->IngestBatch(batch.keys, batch.deltas).ok());
        ReferenceIngest(lockstep.get(), batch, kShards);
        ReferenceIngest(lagging.get(), batch, kShards);
      }
    }
    streaming->AdvanceEpoch();  // Close the last epoch -> final snapshot.
    lockstep->AdvanceEpoch();   // Lockstep mirrors; lagging stays put.

    auto snapshot = streaming->Snapshot();
    ASSERT_NE(snapshot, nullptr);
    // Window measurement: bitwise equal to the lockstep reference's closed
    // window.
    auto reference_y = lockstep->ClosedWindowMeasurement().MoveValue();
    EXPECT_EQ(snapshot->y, reference_y);

    // Detection: bitwise equal to batch Detect over the same window.
    auto streamed = streaming->QueryOutliers(3).MoveValue();
    auto batch_detect = lagging->Detect(3).MoveValue();
    EXPECT_EQ(streamed.mode, batch_detect.mode);
    ASSERT_EQ(streamed.outliers.size(), batch_detect.outliers.size());
    for (size_t i = 0; i < streamed.outliers.size(); ++i) {
      EXPECT_EQ(streamed.outliers[i].key_index,
                batch_detect.outliers[i].key_index);
      EXPECT_EQ(streamed.outliers[i].value, batch_detect.outliers[i].value);
      EXPECT_EQ(streamed.outliers[i].divergence,
                batch_detect.outliers[i].divergence);
    }

    snapshot_y_per_limit.push_back(snapshot->y);
    answers_per_limit.push_back(streamed);
  }

  // Bit-identical across thread limits.
  for (size_t i = 1; i < snapshot_y_per_limit.size(); ++i) {
    EXPECT_EQ(snapshot_y_per_limit[i], snapshot_y_per_limit[0]);
    ASSERT_EQ(answers_per_limit[i].outliers.size(),
              answers_per_limit[0].outliers.size());
    EXPECT_EQ(answers_per_limit[i].mode, answers_per_limit[0].mode);
    for (size_t j = 0; j < answers_per_limit[i].outliers.size(); ++j) {
      EXPECT_EQ(answers_per_limit[i].outliers[j].value,
                answers_per_limit[0].outliers[j].value);
    }
  }
}

TEST(StreamingDetectorTest, StalledShardDefersThenReplays) {
  constexpr size_t kShards = 4;
  const auto batches = SeededBatches(4, 400, /*seed=*/11);

  auto streaming =
      StreamingDetector::Create(SmallOptions(/*window=*/3, kShards))
          .MoveValue();
  core::WindowedDetectorOptions wopts;
  wopts.n = 400;
  wopts.m = 150;
  wopts.seed = 5;
  wopts.iterations = 12;
  wopts.window_epochs = 4;  // W + 1.
  auto reference = core::WindowedOutlierDetector::Create(wopts).MoveValue();

  streaming->AdvanceEpoch();
  reference->AdvanceEpoch();

  // Stall shard 2; ingest with its share withheld on both sides.
  ASSERT_TRUE(streaming->SetShardStalled(2, true).ok());
  std::vector<bool> stalled = {false, false, true, false};
  std::vector<cs::SparseSlice> withheld;
  for (const Batch& batch : batches) {
    ASSERT_TRUE(streaming->IngestBatch(batch.keys, batch.deltas).ok());
    ReferenceIngest(reference.get(), batch, kShards, &stalled, &withheld);
  }
  EXPECT_GT(streaming->backlog_events(), 0u);

  streaming->AdvanceEpoch();
  reference->AdvanceEpoch();
  auto degraded = streaming->Snapshot();
  ASSERT_NE(degraded, nullptr);
  ASSERT_EQ(degraded->stalled_shards.size(), 1u);
  EXPECT_EQ(degraded->stalled_shards[0], 2u);
  // Degraded snapshot == reference without the stalled shard's slices.
  EXPECT_EQ(degraded->y, reference->ClosedWindowMeasurement().MoveValue());

  // Unstall: the backlog replays into the current epoch, in arrival
  // order; the reference ingests the withheld slices at the same point.
  ASSERT_TRUE(streaming->SetShardStalled(2, false).ok());
  EXPECT_EQ(streaming->backlog_events(), 0u);
  for (const cs::SparseSlice& slice : withheld) {
    ASSERT_TRUE(reference->Ingest(slice).ok());
  }
  streaming->AdvanceEpoch();
  reference->AdvanceEpoch();
  auto healed = streaming->Snapshot();
  ASSERT_NE(healed, nullptr);
  EXPECT_TRUE(healed->stalled_shards.empty());
  EXPECT_EQ(healed->y, reference->ClosedWindowMeasurement().MoveValue());
}

TEST(StreamingDetectorTest, SetShardStalledValidatesAndIsIdempotent) {
  auto detector =
      StreamingDetector::Create(SmallOptions(/*window=*/2, /*shards=*/2))
          .MoveValue();
  EXPECT_FALSE(detector->SetShardStalled(2, true).ok());
  EXPECT_TRUE(detector->SetShardStalled(1, true).ok());
  EXPECT_TRUE(detector->SetShardStalled(1, true).ok());   // No-op.
  EXPECT_TRUE(detector->SetShardStalled(1, false).ok());
  EXPECT_TRUE(detector->SetShardStalled(1, false).ok());  // No-op.
}

TEST(StreamingDetectorTest, TumblingPublishesDisjointFullWindows) {
  auto options = SmallOptions(/*window=*/2);
  options.window = WindowKind::kTumbling;
  auto detector = StreamingDetector::Create(options).MoveValue();

  detector->AdvanceEpoch();  // Epoch 0.
  ASSERT_TRUE(detector->IngestBatch({1}, {10.0}).ok());
  detector->AdvanceEpoch();  // Epoch 1: only one closed epoch, no publish.
  EXPECT_EQ(detector->Snapshot(), nullptr);
  ASSERT_TRUE(detector->IngestBatch({2}, {20.0}).ok());
  detector->AdvanceEpoch();  // Epoch 2: window {0, 1} completes.
  auto first = detector->Snapshot();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->version, 1u);
  EXPECT_EQ(first->first_epoch, 0u);
  EXPECT_EQ(first->last_epoch, 1u);
  EXPECT_EQ(first->events, 2u);

  detector->AdvanceEpoch();  // Epoch 3: mid-window, no publish.
  EXPECT_EQ(detector->Snapshot()->version, 1u);
  detector->AdvanceEpoch();  // Epoch 4: window {2, 3} completes.
  auto second = detector->Snapshot();
  EXPECT_EQ(second->version, 2u);
  EXPECT_EQ(second->first_epoch, 2u);
  EXPECT_EQ(second->last_epoch, 3u);
  EXPECT_EQ(second->events, 0u);  // Epochs 2 and 3 were quiet.
}

TEST(StreamingDetectorTest, AdvanceToDrivesEpochsFromTicks) {
  auto options = SmallOptions(/*window=*/3);
  options.epoch_ticks = 10;
  auto detector = StreamingDetector::Create(options).MoveValue();

  EXPECT_FALSE(detector->started());
  EXPECT_EQ(detector->AdvanceTo(0).MoveValue(), 0u);  // Opens epoch 0.
  EXPECT_TRUE(detector->started());
  EXPECT_EQ(detector->AdvanceTo(9).MoveValue(), 0u);   // Same epoch.
  EXPECT_EQ(detector->AdvanceTo(10).MoveValue(), 1u);  // Boundary.
  EXPECT_EQ(detector->AdvanceTo(35).MoveValue(), 3u);  // Crosses two.
  EXPECT_EQ(detector->snapshot_version(), 3u);  // Published per close.
  EXPECT_FALSE(detector->AdvanceTo(34).ok());   // Clock went backwards.
}

TEST(StreamingDetectorTest, ShardOfKeyIsMixedAndInRange) {
  constexpr size_t kShards = 8;
  std::vector<size_t> counts(kShards, 0);
  for (size_t key = 0; key < 4096; ++key) {
    const uint32_t shard = StreamingDetector::ShardOfKey(key, kShards);
    ASSERT_LT(shard, kShards);
    ++counts[shard];
  }
  // SplitMix64 mixing: nothing close to the identity hash's striping —
  // every shard sees a reasonable share of consecutive keys.
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(counts[s], 4096 / kShards / 2);
    EXPECT_LT(counts[s], 4096 / kShards * 2);
  }
}

TEST(StreamingDetectorTest, DetectsInjectedOutlierEndToEnd) {
  auto detector = StreamingDetector::Create(SmallOptions()).MoveValue();
  detector->AdvanceEpoch();
  std::vector<size_t> keys;
  std::vector<double> deltas;
  for (size_t i = 0; i < 400; ++i) {
    keys.push_back(i);
    deltas.push_back(100.0);
  }
  ASSERT_TRUE(detector->IngestBatch(keys, deltas).ok());
  ASSERT_TRUE(detector->IngestBatch({42}, {50000.0}).ok());
  detector->AdvanceEpoch();

  auto outliers = detector->QueryOutliers(1).MoveValue();
  ASSERT_EQ(outliers.outliers.size(), 1u);
  EXPECT_EQ(outliers.outliers[0].key_index, 42u);
  EXPECT_NEAR(outliers.mode, 100.0, 1e-3);

  auto top = detector->QueryTopK(1).MoveValue();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key_index, 42u);

  auto recovery = detector->QueryRecovery(12).MoveValue();
  EXPECT_FALSE(recovery.entries.empty());
  EXPECT_FALSE(detector->QueryRecovery(0).ok());
}

TEST(StreamingDetectorTest, ConcurrentQueriesNeverBlockIngestion) {
  auto detector =
      StreamingDetector::Create(SmallOptions(/*window=*/2)).MoveValue();
  detector->AdvanceEpoch();
  ASSERT_TRUE(detector->IngestBatch({1, 2, 3}, {5.0, 5.0, 5.0}).ok());
  detector->AdvanceEpoch();  // First snapshot exists before readers start.

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&]() {
      uint64_t last_version = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto snapshot = detector->Snapshot();
        ASSERT_NE(snapshot, nullptr);
        // Versions only move forward under concurrent publication.
        ASSERT_GE(snapshot->version, last_version);
        last_version = snapshot->version;
        auto answer = detector->QueryOutliers(2);
        ASSERT_TRUE(answer.ok());
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  const auto batches = SeededBatches(20, 400, /*seed=*/3);
  for (const Batch& batch : batches) {
    ASSERT_TRUE(detector->IngestBatch(batch.keys, batch.deltas).ok());
    detector->AdvanceEpoch();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(queries.load(), 0u);

  // Staleness: the final snapshot is exactly one epoch behind ingestion.
  auto snapshot = detector->Snapshot();
  ASSERT_NE(snapshot, nullptr);
  EXPECT_EQ(detector->current_epoch() - snapshot->last_epoch, 1u);
}

TEST(StreamingDetectorTest, TelemetryCountsAndNeverChangesResults) {
  obs::Telemetry telemetry;
  auto options = SmallOptions(/*window=*/2);
  options.telemetry = &telemetry;
  auto traced = StreamingDetector::Create(options).MoveValue();
  auto plain = StreamingDetector::Create(SmallOptions(/*window=*/2))
                   .MoveValue();

  const auto batches = SeededBatches(4, 400, /*seed=*/21);
  traced->AdvanceEpoch();
  plain->AdvanceEpoch();
  for (const Batch& batch : batches) {
    ASSERT_TRUE(traced->IngestBatch(batch.keys, batch.deltas).ok());
    ASSERT_TRUE(plain->IngestBatch(batch.keys, batch.deltas).ok());
  }
  traced->AdvanceEpoch();
  plain->AdvanceEpoch();
  auto traced_answer = traced->QueryOutliers(2).MoveValue();
  auto plain_answer = plain->QueryOutliers(2).MoveValue();

  // Telemetry is observability, never behavior: identical bits either way.
  EXPECT_EQ(traced->Snapshot()->y, plain->Snapshot()->y);
  EXPECT_EQ(traced_answer.mode, plain_answer.mode);
  ASSERT_EQ(traced_answer.outliers.size(), plain_answer.outliers.size());
  for (size_t i = 0; i < traced_answer.outliers.size(); ++i) {
    EXPECT_EQ(traced_answer.outliers[i].value,
              plain_answer.outliers[i].value);
  }

  uint64_t total_events = 0;
  for (const Batch& batch : batches) total_events += batch.keys.size();
  EXPECT_EQ(telemetry.counter("serve.epochs"), 2u);
  EXPECT_EQ(telemetry.counter("serve.snapshots"), 1u);
  // Ingest telemetry reaches the registry at epoch close: the 4 batches
  // were flushed as one counter add and one accumulated ingest span when
  // epoch 0 closed, and "serve.epoch.events" histograms the closed epoch.
  EXPECT_EQ(telemetry.counter("serve.ingest.batches"), 4u);
  EXPECT_EQ(telemetry.counter("serve.ingest.events"), total_events);
  EXPECT_EQ(telemetry.counter("serve.queries"), 1u);
  EXPECT_EQ(telemetry.value("serve.epoch.events").count, 1u);
  EXPECT_EQ(telemetry.value("serve.epoch.events").max,
            static_cast<double>(total_events));
  EXPECT_EQ(telemetry.value("serve.query.age_epochs").max, 1.0);
  EXPECT_EQ(telemetry.span("serve.ingest").count, 1u);
  EXPECT_EQ(telemetry.span("serve.epoch.advance").count, 2u);
  EXPECT_EQ(telemetry.span("serve.snapshot.publish").count, 1u);
  EXPECT_EQ(telemetry.span("serve.query").count, 1u);
}

TEST(StreamingServiceTest, TenantLifecycle) {
  StreamingService service;
  EXPECT_FALSE(service.AddTenant("", SmallOptions()).ok());
  ASSERT_TRUE(service.AddTenant("clicks", SmallOptions()).ok());
  EXPECT_EQ(service.AddTenant("clicks", SmallOptions()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(service.Tenant("nope").status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(service.AddTenant("latency", SmallOptions()).ok());
  EXPECT_EQ(service.TenantNames().size(), 2u);
  ASSERT_TRUE(service.RemoveTenant("latency").ok());
  EXPECT_EQ(service.RemoveTenant("latency").code(), StatusCode::kNotFound);
  EXPECT_EQ(service.TenantNames().size(), 1u);
}

TEST(StreamingServiceTest, QueryTemplateAgainstTenantSnapshot) {
  StreamingService service;
  ASSERT_TRUE(service.AddTenant("clicks", SmallOptions()).ok());
  ASSERT_TRUE(service.AdvanceTo("clicks", 0).ok());
  std::vector<size_t> keys;
  std::vector<double> deltas;
  for (size_t i = 0; i < 400; ++i) {
    keys.push_back(i);
    deltas.push_back(10.0);
  }
  ASSERT_TRUE(service.Ingest("clicks", keys, deltas).ok());
  ASSERT_TRUE(service.Ingest("clicks", {9}, {90000.0}).ok());
  ASSERT_TRUE(service.AdvanceTo("clicks", 1).ok());

  auto outliers =
      service.Query("SELECT Outlier 1 SUM(score), key FROM clicks GROUP BY key")
          .MoveValue();
  ASSERT_EQ(outliers.rows.size(), 1u);
  EXPECT_EQ(outliers.rows[0].group_key, "9");
  EXPECT_NEAR(outliers.mode, 10.0, 1e-3);
  EXPECT_EQ(outliers.key_space, 400u);
  EXPECT_EQ(outliers.snapshot_version, 1u);
  EXPECT_EQ(outliers.snapshot_last_epoch, 0u);
  EXPECT_EQ(outliers.staleness_epochs, 1u);
  EXPECT_TRUE(outliers.stalled_shards.empty());

  auto top =
      service.Query("SELECT Top 1 SUM(score), key FROM clicks GROUP BY key")
          .MoveValue();
  ASSERT_EQ(top.rows.size(), 1u);
  EXPECT_EQ(top.rows[0].group_key, "9");
  EXPECT_EQ(top.mode, 0.0);

  // Unknown tenant in FROM and malformed text both fail cleanly.
  EXPECT_EQ(service.Query("SELECT Top 1 SUM(s), key FROM ghost GROUP BY key")
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(service.Query("SELECT nonsense").ok());
}

// Regression (tenant-lifetime race): Tenant() used to hand out a raw
// pointer after dropping the service mutex, so a concurrent RemoveTenant
// destroyed the detector under an in-flight Ingest/Query (use-after-free
// under TSan/ASan). The handle is now a shared_ptr: removal only detaches
// the tenant, and the last in-flight caller finishes safely. This test runs
// queries and ingests against a tenant while another thread removes and
// re-adds it; sanitizer runs (scripts/run_sanitizers.sh) make any revival
// of the race fail loudly.
TEST(StreamingServiceTest, RemoveTenantWhileQueryingIsSafe) {
  StreamingService service;
  ASSERT_TRUE(service.AddTenant("churn", SmallOptions()).ok());
  ASSERT_TRUE(service.AdvanceTo("churn", 0).ok());
  ASSERT_TRUE(service.Ingest("churn", {7}, {5000.0}).ok());
  ASSERT_TRUE(service.AdvanceTo("churn", 1).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&]() {
      while (!stop.load(std::memory_order_relaxed)) {
        // Grab a handle; whatever happens to the tenant map afterwards,
        // the handle must stay valid for the whole query.
        auto handle = service.Tenant("churn");
        if (!handle.ok()) continue;  // Between remove and re-add.
        std::shared_ptr<StreamingDetector> detector = handle.MoveValue();
        auto snapshot = detector->Snapshot();
        if (snapshot != nullptr) {
          auto answer = detector->QueryOutliers(1);
          if (answer.ok()) answered.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (int round = 0; round < 50; ++round) {
    ASSERT_TRUE(service.RemoveTenant("churn").ok());
    ASSERT_TRUE(service.AddTenant("churn", SmallOptions()).ok());
    ASSERT_TRUE(service.AdvanceTo("churn", 0).ok());
    ASSERT_TRUE(service.Ingest("churn", {7}, {5000.0}).ok());
    ASSERT_TRUE(service.AdvanceTo("churn", 1).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(answered.load(), 0u);
}

// Pins the tumbling-window staleness contract end to end: between
// publications queries answer from the previous full window, so
// `staleness_epochs` climbs to exactly `window_epochs` just before the
// next publication, drops back to 1 right after, and never underflows
// (current_epoch >= snapshot->last_epoch + 1 always).
TEST(StreamingServiceTest, TumblingStalenessReachesWindowAndNeverUnderflows) {
  constexpr size_t kWindow = 3;
  StreamingService service;
  auto options = SmallOptions(kWindow);
  options.window = WindowKind::kTumbling;
  ASSERT_TRUE(service.AddTenant("t", options).ok());
  const std::string query_text =
      "SELECT Top 1 SUM(score), key FROM t GROUP BY key";

  ASSERT_TRUE(service.AdvanceTo("t", 0).ok());  // Opens epoch 0.
  uint64_t max_staleness = 0;
  for (uint64_t tick = 1; tick <= 3 * kWindow; ++tick) {
    ASSERT_TRUE(service.Ingest("t", {1}, {10.0}).ok());
    ASSERT_TRUE(service.AdvanceTo("t", tick).ok());
    auto result = service.Query(query_text);
    if (tick < kWindow) {
      // No full window yet: nothing published, queries fail cleanly.
      EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
      continue;
    }
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const StreamingQueryResult& answer = result.Value();
    // staleness = current_epoch - snapshot_last_epoch, both unsigned: an
    // underflow would show up as a huge value, so the bounds pin both
    // directions.
    EXPECT_GE(answer.staleness_epochs, 1u);
    EXPECT_LE(answer.staleness_epochs, kWindow);
    // A publication happens exactly at window-boundary ticks.
    EXPECT_EQ(answer.staleness_epochs,
              (tick - kWindow) % kWindow + 1);
    max_staleness = std::max(max_staleness, answer.staleness_epochs);
  }
  // The bound is tight: staleness actually reaches window_epochs.
  EXPECT_EQ(max_staleness, kWindow);
}

TEST(StreamingServiceTest, TenantsAreIsolated) {
  StreamingService service;
  auto clicks_options = SmallOptions();
  auto latency_options = SmallOptions();
  latency_options.seed = 77;  // Different consensus seed per tenant.
  ASSERT_TRUE(service.AddTenant("clicks", clicks_options).ok());
  ASSERT_TRUE(service.AddTenant("latency", latency_options).ok());

  ASSERT_TRUE(service.AdvanceAllTo(0).ok());
  ASSERT_TRUE(service.Ingest("clicks", {5}, {1000.0}).ok());
  ASSERT_TRUE(service.AdvanceAllTo(1).ok());

  // clicks sees its spike; latency saw nothing.
  auto clicks = service.Tenant("clicks").MoveValue()->Snapshot();
  auto latency = service.Tenant("latency").MoveValue()->Snapshot();
  ASSERT_NE(clicks, nullptr);
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(clicks->events, 1u);
  EXPECT_EQ(latency->events, 0u);
  EXPECT_EQ(latency->y, std::vector<double>(150, 0.0));
}

}  // namespace
}  // namespace csod::serve
