#include "dist/topk_protocols.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "outlier/outlier.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

namespace csod::dist {
namespace {

// Non-negative global vector split by key across nodes.
struct TopKSetup {
  std::vector<double> global;
  std::unique_ptr<Cluster> cluster;
  std::vector<outlier::Outlier> truth;
};

TopKSetup MakeSetup(size_t n, size_t num_nodes, size_t k, uint64_t seed,
                    workload::PartitionStrategy strategy =
                        workload::PartitionStrategy::kByKey) {
  workload::PowerLawOptions gen;
  gen.n = n;
  gen.alpha = 1.2;
  gen.seed = seed;
  TopKSetup setup;
  setup.global = workload::GeneratePowerLaw(gen).Value();

  workload::PartitionOptions part;
  part.num_nodes = num_nodes;
  part.strategy = strategy;
  part.seed = seed + 1;
  auto slices = workload::PartitionAdditive(setup.global, part).Value();
  setup.cluster = std::make_unique<Cluster>(n);
  for (auto& slice : slices) {
    EXPECT_TRUE(setup.cluster->AddNode(std::move(slice)).ok());
  }
  setup.truth = outlier::TopK(setup.global, k);
  return setup;
}

void ExpectSameKeys(const std::vector<outlier::Outlier>& expected,
                    const std::vector<outlier::Outlier>& actual) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].key_index, expected[i].key_index) << "rank " << i;
    EXPECT_NEAR(actual[i].value, expected[i].value, 1e-9) << "rank " << i;
  }
}

TEST(ThresholdAlgorithmTest, ExactOnByKeyPartition) {
  const size_t k = 10;
  TopKSetup setup = MakeSetup(500, 4, k, 3);
  CommStats comm;
  auto result = RunThresholdAlgorithmTopK(*setup.cluster, k, 8, &comm);
  ASSERT_TRUE(result.ok());
  ExpectSameKeys(setup.truth, result.Value().top);
  EXPECT_GE(comm.rounds(), 1u);
}

TEST(ThresholdAlgorithmTest, ExactOnUniformSplit) {
  const size_t k = 5;
  TopKSetup setup =
      MakeSetup(300, 5, k, 9, workload::PartitionStrategy::kUniformSplit);
  CommStats comm;
  auto result = RunThresholdAlgorithmTopK(*setup.cluster, k, 16, &comm);
  ASSERT_TRUE(result.ok());
  ExpectSameKeys(setup.truth, result.Value().top);
}

TEST(ThresholdAlgorithmTest, MultiRoundCheaperThanFullScanOnSkewedTop) {
  // TA should terminate after seeing only a prefix of each sorted list.
  const size_t n = 2000;
  const size_t k = 3;
  TopKSetup setup = MakeSetup(n, 4, k, 17);
  CommStats comm;
  auto result = RunThresholdAlgorithmTopK(*setup.cluster, k, 4, &comm);
  ASSERT_TRUE(result.ok());
  ExpectSameKeys(setup.truth, result.Value().top);
  // Communication well below shipping all nnz tuples to the aggregator
  // plus random access for every key.
  EXPECT_LT(comm.tuples_total(), 4u * n);
}

TEST(ThresholdAlgorithmTest, RejectsBadInputs) {
  Cluster cluster(10);
  CommStats comm;
  EXPECT_FALSE(RunThresholdAlgorithmTopK(cluster, 3, 4, &comm).ok());
  cs::SparseSlice slice;
  slice.indices = {0};
  slice.values = {1.0};
  ASSERT_TRUE(cluster.AddNode(slice).ok());
  EXPECT_FALSE(RunThresholdAlgorithmTopK(cluster, 3, 0, &comm).ok());
  EXPECT_FALSE(RunThresholdAlgorithmTopK(cluster, 3, 4, nullptr).ok());
}

TEST(ThresholdAlgorithmTest, RejectsNegativeValues) {
  Cluster cluster(4);
  cs::SparseSlice slice;
  slice.indices = {0, 1};
  slice.values = {1.0, -2.0};
  ASSERT_TRUE(cluster.AddNode(slice).ok());
  CommStats comm;
  auto result = RunThresholdAlgorithmTopK(cluster, 2, 4, &comm);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TputTest, ExactOnByKeyPartition) {
  const size_t k = 10;
  TopKSetup setup = MakeSetup(500, 4, k, 5);
  CommStats comm;
  auto result = RunTputTopK(*setup.cluster, k, &comm);
  ASSERT_TRUE(result.ok());
  ExpectSameKeys(setup.truth, result.Value().top);
  EXPECT_EQ(comm.rounds(), 3u);
}

TEST(TputTest, ExactOnUniformSplit) {
  const size_t k = 7;
  TopKSetup setup =
      MakeSetup(400, 6, k, 23, workload::PartitionStrategy::kUniformSplit);
  CommStats comm;
  auto result = RunTputTopK(*setup.cluster, k, &comm);
  ASSERT_TRUE(result.ok());
  ExpectSameKeys(setup.truth, result.Value().top);
}

TEST(TputTest, RejectsNegativeAndEmpty) {
  Cluster empty(4);
  CommStats comm;
  EXPECT_FALSE(RunTputTopK(empty, 2, &comm).ok());

  Cluster cluster(4);
  cs::SparseSlice slice;
  slice.indices = {0};
  slice.values = {-1.0};
  ASSERT_TRUE(cluster.AddNode(slice).ok());
  EXPECT_FALSE(RunTputTopK(cluster, 2, &comm).ok());
}

}  // namespace
}  // namespace csod::dist
