#include "workload/key_dictionary.h"

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

namespace csod::workload {
namespace {

TEST(KeyDictionaryTest, InternAssignsSequentialIndices) {
  GlobalKeyDictionary dict;
  EXPECT_EQ(dict.Intern("a"), 0u);
  EXPECT_EQ(dict.Intern("b"), 1u);
  EXPECT_EQ(dict.Intern("c"), 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(KeyDictionaryTest, InternIsIdempotent) {
  GlobalKeyDictionary dict;
  const size_t first = dict.Intern("en-US|web");
  EXPECT_EQ(dict.Intern("en-US|web"), first);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(KeyDictionaryTest, LookupFindsInterned) {
  GlobalKeyDictionary dict;
  dict.Intern("x");
  dict.Intern("y");
  auto r = dict.Lookup("y");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.Value(), 1u);
}

TEST(KeyDictionaryTest, LookupMissingIsNotFound) {
  GlobalKeyDictionary dict;
  auto r = dict.Lookup("absent");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(KeyDictionaryTest, KeyOfRoundTrips) {
  GlobalKeyDictionary dict;
  const size_t idx = dict.Intern("2015-05-01|en-US|web|url42|DC3");
  auto key = dict.KeyOf(idx);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key.Value(), "2015-05-01|en-US|web|url42|DC3");
}

TEST(KeyDictionaryTest, KeyOfOutOfRange) {
  GlobalKeyDictionary dict;
  dict.Intern("only");
  EXPECT_FALSE(dict.KeyOf(1).ok());
}

TEST(KeyDictionaryTest, SaveLoadRoundTrip) {
  GlobalKeyDictionary dict;
  dict.Intern("2015-05-01|en-US|web|url1");
  dict.Intern("2015-05-01|de-DE|image|url2");
  dict.Intern("k3");
  std::stringstream stream;
  ASSERT_TRUE(dict.Save(stream).ok());

  GlobalKeyDictionary loaded;
  ASSERT_TRUE(loaded.Load(stream).ok());
  EXPECT_EQ(loaded.size(), 3u);
  EXPECT_EQ(loaded.keys(), dict.keys());
  EXPECT_EQ(loaded.Lookup("k3").Value(), 2u);
}

TEST(KeyDictionaryTest, SaveRejectsNewlineKeys) {
  GlobalKeyDictionary dict;
  dict.Intern("bad\nkey");
  std::stringstream stream;
  EXPECT_FALSE(dict.Save(stream).ok());
}

TEST(KeyDictionaryTest, LoadRejectsDuplicates) {
  std::stringstream stream("a\nb\na\n");
  GlobalKeyDictionary dict;
  EXPECT_FALSE(dict.Load(stream).ok());
}

TEST(KeyDictionaryTest, LoadReplacesContent) {
  GlobalKeyDictionary dict;
  dict.Intern("old");
  std::stringstream stream("new1\nnew2\n");
  ASSERT_TRUE(dict.Load(stream).ok());
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_FALSE(dict.Lookup("old").ok());
  EXPECT_EQ(dict.Lookup("new1").Value(), 0u);
}

TEST(KeyDictionaryTest, MergeReturnsRemapping) {
  GlobalKeyDictionary global;
  global.Intern("a");
  global.Intern("b");

  GlobalKeyDictionary node;
  node.Intern("b");   // Already global index 1.
  node.Intern("c");   // New: becomes global index 2.
  node.Intern("a");   // Already global index 0.

  const std::vector<size_t> remap = global.Merge(node);
  EXPECT_EQ(remap, (std::vector<size_t>{1, 2, 0}));
  EXPECT_EQ(global.size(), 3u);
  EXPECT_EQ(global.Lookup("c").Value(), 2u);
}

TEST(KeyDictionaryTest, KeysInIndexOrder) {
  GlobalKeyDictionary dict;
  dict.Intern("z");
  dict.Intern("a");
  ASSERT_EQ(dict.keys().size(), 2u);
  EXPECT_EQ(dict.keys()[0], "z");
  EXPECT_EQ(dict.keys()[1], "a");
}

}  // namespace
}  // namespace csod::workload
