#include "query/executor.h"
#include "query/query.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace csod::query {
namespace {

// --- Parser ------------------------------------------------------------

TEST(QueryParserTest, ParsesThePaperTemplate) {
  auto parsed = ParseQuery(
      "SELECT Outlier 5 SUM(Score), Market, Vertical "
      "FROM Log_Streams PARAMS(2015-05-01, 2015-05-07) "
      "WHERE DataCentre = 'DC3' AND Market != 'pt-BR' "
      "GROUP BY Market, Vertical;");
  ASSERT_TRUE(parsed.ok());
  const Query& q = parsed.Value();
  EXPECT_EQ(q.kind, QueryKind::kOutlier);
  EXPECT_EQ(q.k, 5u);
  EXPECT_EQ(q.score_column, "Score");
  EXPECT_EQ(q.group_by, (std::vector<std::string>{"Market", "Vertical"}));
  EXPECT_EQ(q.source, "Log_Streams");
  ASSERT_EQ(q.predicates.size(), 2u);
  EXPECT_EQ(q.predicates[0].column, "DataCentre");
  EXPECT_EQ(q.predicates[0].op, Predicate::Op::kEquals);
  EXPECT_EQ(q.predicates[0].value, "DC3");
  EXPECT_EQ(q.predicates[1].op, Predicate::Op::kNotEquals);
}

TEST(QueryParserTest, ParsesTopWithoutWhereOrParams) {
  auto parsed =
      ParseQuery("select top 10 sum(clicks) from events group by url");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.Value().kind, QueryKind::kTop);
  EXPECT_EQ(parsed.Value().k, 10u);
  EXPECT_TRUE(parsed.Value().predicates.empty());
  EXPECT_EQ(parsed.Value().group_by, (std::vector<std::string>{"url"}));
}

TEST(QueryParserTest, SelectListMayOmitAttributes) {
  auto parsed =
      ParseQuery("SELECT Outlier 3 SUM(s) FROM t GROUP BY a, b");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.Value().group_by, (std::vector<std::string>{"a", "b"}));
}

TEST(QueryParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("SELECT banana 5 SUM(s) FROM t GROUP BY a").ok());
  EXPECT_FALSE(ParseQuery("SELECT Outlier 0 SUM(s) FROM t GROUP BY a").ok());
  EXPECT_FALSE(ParseQuery("SELECT Outlier x SUM(s) FROM t GROUP BY a").ok());
  EXPECT_FALSE(ParseQuery("SELECT Outlier 5 SUM s FROM t GROUP BY a").ok());
  EXPECT_FALSE(ParseQuery("SELECT Outlier 5 SUM(s) FROM t").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT Outlier 5 SUM(s), b FROM t GROUP BY a").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT Outlier 5 SUM(s) FROM t WHERE a GROUP BY a").ok());
  EXPECT_FALSE(ParseQuery(
                   "SELECT Outlier 5 SUM(s) FROM t GROUP BY a extra junk")
                   .ok());
  EXPECT_FALSE(
      ParseQuery("SELECT Outlier 5 SUM(s) FROM t WHERE a = 'unterminated "
                 "GROUP BY a")
          .ok());
}

// --- Executor ----------------------------------------------------------

// Builds L node tables for the search-quality scenario: columns
// (Market, Vertical, DataCentre, Score). Key (mkt-X, web) accumulates a
// huge negative score; everything else sits near 200 per (market,
// vertical) pair spread over nodes.
std::vector<LogTable> MakeNodeTables() {
  std::vector<LogTable> tables(3);
  for (auto& table : tables) {
    table.columns = {"Market", "Vertical", "DataCentre", "Score"};
  }
  int row_id = 0;
  for (int market = 0; market < 20; ++market) {
    for (int vertical = 0; vertical < 5; ++vertical) {
      for (int node = 0; node < 3; ++node) {
        const std::string m = "mkt-" + std::to_string(market);
        const std::string v = "vert-" + std::to_string(vertical);
        const std::string dc = "DC" + std::to_string(node + 1);
        // Every (market, vertical) sums to exactly 600 across nodes...
        tables[node].AddRow({m, v, dc, "200"}).Check();
        ++row_id;
      }
    }
  }
  // ...except the planted outlier: (mkt-7, vert-2) gets -90000 at node 1.
  tables[1].AddRow({"mkt-7", "vert-2", "DC2", "-90000"}).Check();
  // And an excluded-by-WHERE row that would otherwise be the top outlier.
  tables[0].AddRow({"mkt-0", "vert-0", "DCX", "999999"}).Check();
  (void)row_id;
  return tables;
}

TEST(QueryExecutorTest, DistributedMatchesExact) {
  auto query = ParseQuery(
                   "SELECT Outlier 3 SUM(Score), Market, Vertical "
                   "FROM logs WHERE DataCentre != 'DCX' "
                   "GROUP BY Market, Vertical")
                   .MoveValue();
  const auto tables = MakeNodeTables();

  auto exact = ExecuteExact(query, tables).MoveValue();
  ExecutionOptions options;
  options.m = 60;
  options.seed = 5;
  options.iterations = 10;
  auto distributed = ExecuteDistributed(query, tables, options).MoveValue();

  ASSERT_FALSE(exact.rows.empty());
  ASSERT_FALSE(distributed.rows.empty());
  // The planted outlier tops both answers.
  EXPECT_EQ(exact.rows[0].group_key, "mkt-7|vert-2");
  EXPECT_EQ(distributed.rows[0].group_key, "mkt-7|vert-2");
  EXPECT_NEAR(distributed.rows[0].value, exact.rows[0].value, 1.0);
  EXPECT_NEAR(distributed.mode, 600.0, 1.0);
  // The WHERE clause removed the DCX row from consideration.
  for (const auto& row : exact.rows) {
    EXPECT_NE(row.value, 999999.0 + 600.0);
  }
  // Communication: well below shipping all keys.
  EXPECT_LT(distributed.bytes_shipped, distributed.bytes_all);
  EXPECT_EQ(distributed.key_space, 100u);
}

TEST(QueryExecutorTest, TopQueryRanksByValue) {
  auto query =
      ParseQuery("SELECT Top 2 SUM(Score), url FROM logs GROUP BY url")
          .MoveValue();
  std::vector<LogTable> tables(2);
  for (auto& table : tables) table.columns = {"url", "Score"};
  tables[0].AddRow({"a", "50"}).Check();
  tables[0].AddRow({"b", "500"}).Check();
  tables[1].AddRow({"b", "500"}).Check();
  tables[1].AddRow({"c", "3000"}).Check();
  tables[1].AddRow({"d", "1"}).Check();

  ExecutionOptions options;
  options.m = 4;
  options.iterations = 4;
  auto result = ExecuteDistributed(query, tables, options).MoveValue();
  ASSERT_EQ(result.rows.size(), 2u);
  EXPECT_EQ(result.rows[0].group_key, "c");
  EXPECT_EQ(result.rows[1].group_key, "b");
  EXPECT_NEAR(result.rows[0].value, 3000.0, 1.0);
  EXPECT_NEAR(result.rows[1].value, 1000.0, 1.0);
}

TEST(QueryExecutorTest, ErrorsSurfaceCleanly) {
  auto query =
      ParseQuery("SELECT Outlier 2 SUM(Score), g FROM t GROUP BY g")
          .MoveValue();

  // Missing column.
  std::vector<LogTable> missing(1);
  missing[0].columns = {"g", "NotScore"};
  missing[0].AddRow({"x", "1"}).Check();
  EXPECT_FALSE(ExecuteDistributed(query, missing, {}).ok());

  // Non-numeric score.
  std::vector<LogTable> bad_score(1);
  bad_score[0].columns = {"g", "Score"};
  bad_score[0].AddRow({"x", "not-a-number"}).Check();
  EXPECT_FALSE(ExecuteDistributed(query, bad_score, {}).ok());

  // Empty input.
  EXPECT_FALSE(ExecuteDistributed(query, {}, {}).ok());

  // WHERE filters everything.
  auto filtered =
      ParseQuery(
          "SELECT Outlier 2 SUM(Score), g FROM t WHERE g = 'absent' "
          "GROUP BY g")
          .MoveValue();
  std::vector<LogTable> tables(1);
  tables[0].columns = {"g", "Score"};
  tables[0].AddRow({"x", "1"}).Check();
  EXPECT_FALSE(ExecuteDistributed(filtered, tables, {}).ok());

  // m == 0.
  ExecutionOptions zero_m;
  zero_m.m = 0;
  EXPECT_FALSE(ExecuteDistributed(query, tables, zero_m).ok());
}

TEST(LogTableTest, AddRowValidatesArity) {
  LogTable table;
  table.columns = {"a", "b"};
  EXPECT_TRUE(table.AddRow({"1", "2"}).ok());
  EXPECT_FALSE(table.AddRow({"1"}).ok());
  EXPECT_FALSE(table.ColumnIndex("zzz").ok());
  EXPECT_EQ(table.ColumnIndex("b").Value(), 1u);
}

}  // namespace
}  // namespace csod::query
