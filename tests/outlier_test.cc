#include "outlier/outlier.h"

#include <vector>

#include <gtest/gtest.h>

namespace csod::outlier {
namespace {

TEST(ModeTest, EmptyVector) {
  EXPECT_EQ(ComputeMode({}), 0.0);
  EXPECT_FALSE(IsMajorityDominated({}));
}

TEST(ModeTest, MostFrequentValueWins) {
  EXPECT_EQ(ComputeMode({1, 2, 2, 3, 2}), 2.0);
}

TEST(ModeTest, TieBreaksTowardSmallerValue) {
  EXPECT_EQ(ComputeMode({5, 5, 3, 3}), 3.0);
}

TEST(ModeTest, MajorityDominatedDetection) {
  EXPECT_TRUE(IsMajorityDominated({7, 7, 7, 1, 2}));
  EXPECT_FALSE(IsMajorityDominated({7, 7, 1, 2}));  // Exactly half is not >.
  EXPECT_TRUE(IsMajorityDominated({4.0}));
}

TEST(ExactKOutliersTest, FindsFurthestFromMode) {
  // Mode 10; divergences: 90 (idx 3), 40 (idx 5), 5 (idx 0).
  const std::vector<double> x = {15, 10, 10, 100, 10, 50, 10};
  OutlierSet set = ExactKOutliers(x, 2);
  EXPECT_EQ(set.mode, 10.0);
  ASSERT_EQ(set.outliers.size(), 2u);
  EXPECT_EQ(set.outliers[0].key_index, 3u);
  EXPECT_EQ(set.outliers[0].value, 100.0);
  EXPECT_EQ(set.outliers[0].divergence, 90.0);
  EXPECT_EQ(set.outliers[1].key_index, 5u);
}

TEST(ExactKOutliersTest, NegativeDivergenceCounts) {
  // Outliers below the mode matter as much as above (the real-field
  // setting that breaks TA/TPUT assumptions).
  const std::vector<double> x = {10, 10, 10, -80, 10, 95};
  OutlierSet set = ExactKOutliers(x, 2);
  ASSERT_EQ(set.outliers.size(), 2u);
  EXPECT_EQ(set.outliers[0].key_index, 3u);  // |−80−10| = 90
  EXPECT_EQ(set.outliers[1].key_index, 5u);  // |95−10| = 85
}

TEST(ExactKOutliersTest, FewerOutliersThanK) {
  const std::vector<double> x = {5, 5, 5, 9};
  OutlierSet set = ExactKOutliers(x, 10);
  EXPECT_EQ(set.outliers.size(), 1u);  // min(k, |O|).
}

TEST(ExactKOutliersTest, AllEqualNoOutliers) {
  const std::vector<double> x = {3, 3, 3, 3};
  OutlierSet set = ExactKOutliers(x, 5);
  EXPECT_TRUE(set.outliers.empty());
  EXPECT_EQ(set.mode, 3.0);
}

TEST(ExactKOutliersTest, SingleElement) {
  OutlierSet set = ExactKOutliers({42.0}, 3);
  EXPECT_TRUE(set.outliers.empty());
  EXPECT_EQ(set.mode, 42.0);
}

TEST(ExactKOutliersTest, TiesBrokenByIndex) {
  const std::vector<double> x = {0, 0, 0, 5, -5};
  OutlierSet set = ExactKOutliers(x, 2);
  ASSERT_EQ(set.outliers.size(), 2u);
  EXPECT_EQ(set.outliers[0].key_index, 3u);
  EXPECT_EQ(set.outliers[1].key_index, 4u);
}

TEST(KOutliersGivenModeTest, UsesSuppliedMode) {
  const std::vector<double> x = {1, 2, 3};
  OutlierSet set = KOutliersGivenMode(x, 2.0, 3);
  EXPECT_EQ(set.mode, 2.0);
  EXPECT_EQ(set.outliers.size(), 2u);  // x[1] == mode is excluded.
}

TEST(TopKTest, DistinctFromOutlierK) {
  // Figure 1(b): the top-k keys are NOT the k-outlier keys when data has a
  // large positive mode and low-side outliers.
  const std::vector<double> x = {1800, 1800, 1800, 1805, 20, 1810};
  const size_t k = 2;

  std::vector<Outlier> top = TopK(x, k);
  ASSERT_EQ(top.size(), k);
  EXPECT_EQ(top[0].key_index, 5u);  // 1810
  EXPECT_EQ(top[1].key_index, 3u);  // 1805

  OutlierSet outliers = ExactKOutliers(x, k);
  ASSERT_EQ(outliers.outliers.size(), k);
  EXPECT_EQ(outliers.outliers[0].key_index, 4u);  // |20−1800| dominates.
}

TEST(AbsoluteTopKTest, RanksByMagnitude) {
  const std::vector<double> x = {-100, 5, 99, -2};
  std::vector<Outlier> abs_top = AbsoluteTopK(x, 2);
  ASSERT_EQ(abs_top.size(), 2u);
  EXPECT_EQ(abs_top[0].key_index, 0u);
  EXPECT_EQ(abs_top[1].key_index, 2u);
}

TEST(KOutliersFromRecoveryTest, SelectsFurthestRecoveredEntries) {
  cs::BompResult recovery;
  recovery.mode = 100.0;
  recovery.entries = {{1, 150.0}, {2, 100.0}, {3, 5.0}, {4, 120.0}};
  OutlierSet set = KOutliersFromRecovery(recovery, 2);
  EXPECT_EQ(set.mode, 100.0);
  ASSERT_EQ(set.outliers.size(), 2u);
  EXPECT_EQ(set.outliers[0].key_index, 3u);  // |5−100| = 95.
  EXPECT_EQ(set.outliers[1].key_index, 1u);  // |150−100| = 50.
  // Entry 2 equals the mode: not an outlier.
}

TEST(KOutliersFromRecoveryTest, EmptyRecovery) {
  cs::BompResult recovery;
  recovery.mode = 7.0;
  OutlierSet set = KOutliersFromRecovery(recovery, 5);
  EXPECT_TRUE(set.outliers.empty());
  EXPECT_EQ(set.mode, 7.0);
}

}  // namespace
}  // namespace csod::outlier
