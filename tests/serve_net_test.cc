// Tests of the wire-facing deployment surface (serve/net.h): framed
// end-to-end exactness against the in-process detector, both transports,
// admission control / backpressure, torn-frame retry conservation, and
// snapshot-replicated followers.
#include "serve/net.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dist/comm.h"
#include "dist/wire_format.h"
#include "obs/telemetry.h"
#include "serve/checkpoint.h"
#include "serve/service.h"
#include "serve/streaming_detector.h"
#include "sim/buggify.h"

namespace csod::serve {
namespace {

StreamingDetectorOptions SmallOptions(size_t window = 3, size_t shards = 4) {
  StreamingDetectorOptions options;
  options.n = 400;
  options.m = 150;
  options.seed = 5;
  options.iterations = 12;
  options.window_epochs = window;
  options.num_shards = shards;
  return options;
}

// A deterministic keyed batch with one heavy key so queries have answers.
void SeededBatch(uint64_t seed, size_t n, std::vector<size_t>* keys,
                 std::vector<double>* deltas) {
  keys->clear();
  deltas->clear();
  uint64_t x = seed;
  for (size_t i = 0; i < 60; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    keys->push_back((x >> 33) % n);
    deltas->push_back(1.0 + static_cast<double>((x >> 20) % 8));
  }
  keys->push_back(7);
  deltas->push_back(5000.0);
}

// Service + tenant + server + loopback client, ready to drive.
struct Rig {
  explicit Rig(StreamingDetectorOptions options = SmallOptions(),
               NetServerOptions net = {})
      : server(&service, net), transport(&server), client(&transport) {
    EXPECT_TRUE(service.AddTenant("t", options).ok());
  }
  std::shared_ptr<StreamingDetector> tenant() {
    return service.Tenant("t").MoveValue();
  }

  StreamingService service;
  NetServer server;
  LoopbackTransport transport;
  NetClient client;
};

TEST(NetCodecTest, SnapshotResponseRoundTripsExactly) {
  SketchSnapshot snapshot;
  snapshot.version = 42;
  snapshot.first_epoch = 3;
  snapshot.last_epoch = 6;
  snapshot.epochs_covered = 4;
  snapshot.events = 12345;
  snapshot.y = {1.5, -2.25, 0.0, 3.0e-17};
  snapshot.stalled_shards = {1, 3};

  const std::string frame = EncodeSnapshotResponse(snapshot).MoveValue();
  const SketchSnapshot decoded = DecodeSnapshotResponse(frame).MoveValue();
  EXPECT_EQ(decoded.version, snapshot.version);
  EXPECT_EQ(decoded.first_epoch, snapshot.first_epoch);
  EXPECT_EQ(decoded.last_epoch, snapshot.last_epoch);
  EXPECT_EQ(decoded.epochs_covered, snapshot.epochs_covered);
  EXPECT_EQ(decoded.events, snapshot.events);
  EXPECT_EQ(decoded.y, snapshot.y);  // Bitwise: doubles travel by bits.
  EXPECT_EQ(decoded.stalled_shards, snapshot.stalled_shards);
}

TEST(NetCodecTest, CorruptionAnywhereIsDataLoss) {
  SketchSnapshot snapshot;
  snapshot.version = 1;
  snapshot.y = {1.0, 2.0};
  const std::string frame = EncodeSnapshotResponse(snapshot).MoveValue();
  for (size_t at : {size_t{0}, size_t{5}, frame.size() / 2,
                    frame.size() - 1}) {
    std::string bad = frame;
    bad[at] = static_cast<char>(bad[at] ^ 0x20);
    EXPECT_EQ(DecodeSnapshotResponse(bad).status().code(),
              StatusCode::kDataLoss)
        << "flipped byte " << at;
  }
  std::string torn = frame.substr(0, frame.size() - 3);
  EXPECT_EQ(DecodeSnapshotResponse(torn).status().code(),
            StatusCode::kDataLoss);
}

TEST(NetServerTest, RejectsGarbageAndUnknownKinds) {
  Rig rig;
  // Garbage bytes: the response is a kError frame carrying DataLoss.
  const std::string response = rig.server.HandleFrame("not a frame");
  const dist::FrameView view = dist::DecodeFrame(response).MoveValue();
  EXPECT_EQ(view.kind, static_cast<uint8_t>(NetFrameKind::kError));
  EXPECT_EQ(rig.server.frames_rejected(), 1u);

  // A checksummed frame of a kind the server does not speak.
  const std::string unknown = dist::EncodeFrame(99, 0, "");
  const dist::FrameView bad =
      dist::DecodeFrame(rig.server.HandleFrame(unknown)).MoveValue();
  EXPECT_EQ(bad.kind, static_cast<uint8_t>(NetFrameKind::kError));

  // Oversized frames are refused before decoding.
  NetServerOptions tiny;
  tiny.max_frame_bytes = 16;
  StreamingService service;
  NetServer small(&service, tiny);
  const std::string refused =
      small.HandleFrame(dist::EncodeFrame(17, 0, std::string(64, 'x')));
  EXPECT_EQ(dist::DecodeFrame(refused).MoveValue().kind,
            static_cast<uint8_t>(NetFrameKind::kError));
}

// The tentpole exactness gate: every answer served over the wire is
// bit-identical to the same calls made in-process.
TEST(NetEndToEndTest, LoopbackMatchesInProcessExactly) {
  Rig rig;
  auto reference = StreamingDetector::Create(SmallOptions()).MoveValue();

  ASSERT_TRUE(rig.client.AdvanceTo("t", 0).ok());
  reference->AdvanceEpoch();
  std::vector<size_t> keys;
  std::vector<double> deltas;
  for (uint64_t epoch = 0; epoch < 5; ++epoch) {
    for (uint64_t b = 0; b < 3; ++b) {
      SeededBatch(epoch * 17 + b, 400, &keys, &deltas);
      ASSERT_TRUE(rig.client.Ingest("t", keys, deltas).ok());
      ASSERT_TRUE(reference->IngestBatch(keys, deltas).ok());
    }
    EXPECT_EQ(rig.client.AdvanceTo("t", epoch + 1).MoveValue(), epoch + 1);
    reference->AdvanceEpoch();
  }

  // Snapshot over the wire == the reference's, bit for bit.
  const SketchSnapshot fetched =
      rig.client.FetchSnapshot("t").MoveValue();
  auto want = reference->Snapshot();
  ASSERT_NE(want, nullptr);
  EXPECT_EQ(fetched.version, want->version);
  EXPECT_EQ(fetched.first_epoch, want->first_epoch);
  EXPECT_EQ(fetched.last_epoch, want->last_epoch);
  EXPECT_EQ(fetched.y, want->y);
  EXPECT_EQ(fetched.events, want->events);

  // Query over the wire == QueryOutliers in-process, bit for bit.
  const StreamingQueryResult got =
      rig.client
          .Query("SELECT Outlier 3 SUM(score), key FROM t GROUP BY key")
          .MoveValue();
  const outlier::OutlierSet expect = reference->QueryOutliers(3).MoveValue();
  EXPECT_EQ(got.mode, expect.mode);
  ASSERT_EQ(got.rows.size(), expect.outliers.size());
  for (size_t i = 0; i < got.rows.size(); ++i) {
    EXPECT_EQ(got.rows[i].group_key,
              std::to_string(expect.outliers[i].key_index));
    EXPECT_EQ(got.rows[i].value, expect.outliers[i].value);
    EXPECT_EQ(got.rows[i].rank_score, expect.outliers[i].divergence);
  }
  EXPECT_EQ(got.staleness_epochs, 1u);
  EXPECT_EQ(rig.client.stats().retries, 0u);
  EXPECT_EQ(rig.server.frames_handled(), rig.client.stats().frames_sent);
}

TEST(NetEndToEndTest, SocketTransportServesSameAnswers) {
  StreamingService service;
  ASSERT_TRUE(service.AddTenant("t", SmallOptions()).ok());
  NetServer server(&service);
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread serving([fd = fds[1], &server] {
    const Status served = ServeConnection(fd, &server);
    EXPECT_TRUE(served.ok()) << served.ToString();
    ::close(fd);
  });
  {
    SocketTransport transport(fds[0]);
    NetClient client(&transport);
    ASSERT_TRUE(client.AdvanceTo("t", 0).ok());
    std::vector<size_t> keys;
    std::vector<double> deltas;
    SeededBatch(1, 400, &keys, &deltas);
    ASSERT_TRUE(client.Ingest("t", keys, deltas).ok());
    EXPECT_EQ(client.AdvanceTo("t", 1).MoveValue(), 1u);

    const StreamingQueryResult over_socket =
        client.Query("SELECT Top 2 SUM(score), key FROM t GROUP BY key")
            .MoveValue();
    const StreamingQueryResult in_process =
        service.Query("SELECT Top 2 SUM(score), key FROM t GROUP BY key")
            .MoveValue();
    ASSERT_EQ(over_socket.rows.size(), in_process.rows.size());
    for (size_t i = 0; i < over_socket.rows.size(); ++i) {
      EXPECT_EQ(over_socket.rows[i].group_key,
                in_process.rows[i].group_key);
      EXPECT_EQ(over_socket.rows[i].value, in_process.rows[i].value);
    }
  }  // Transport destructor closes the client fd -> clean EOF server-side.
  serving.join();
}

TEST(NetEndToEndTest, SnapshotFetchBeforePublicationFailsCleanly) {
  Rig rig;
  EXPECT_EQ(rig.client.FetchSnapshot("t").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(rig.client.AdvanceTo("t", 0).MoveValue(), 0u);
  EXPECT_EQ(rig.client.FetchSnapshot("t").status().code(),
            StatusCode::kFailedPrecondition);
  // Unknown tenants are NotFound end to end.
  EXPECT_EQ(rig.client.FetchSnapshot("ghost").status().code(),
            StatusCode::kNotFound);
}

// Admission control: once the tenant's deferred backlog exceeds the
// per-tenant byte bound, ingest frames get a pushback (ResourceExhausted)
// and nothing is ingested; draining the backlog re-admits.
TEST(NetBackpressureTest, PushbackRefusesThenDrainReadmits) {
  NetServerOptions net;
  // Room for ~200 deferred 12-byte tuples.
  net.max_tenant_backlog_bytes = 200 * dist::kKeyValueBytes;
  Rig rig(SmallOptions(/*window=*/3, /*shards=*/2), net);
  auto detector = rig.tenant();

  ASSERT_TRUE(rig.client.AdvanceTo("t", 0).ok());
  // Stall both shards: every ingested event is deferred.
  ASSERT_TRUE(detector->SetShardStalled(0, true).ok());
  ASSERT_TRUE(detector->SetShardStalled(1, true).ok());

  std::vector<size_t> keys(61);
  std::vector<double> deltas(61);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = i % 400;
    deltas[i] = 1.0;
  }
  // 61 events -> 732 B per refused-later batch; three fit under 2400 B.
  for (int b = 0; b < 3; ++b) {
    ASSERT_TRUE(rig.client.Ingest("t", keys, deltas).ok());
  }
  const uint64_t backlog_before = detector->backlog_events();
  EXPECT_EQ(backlog_before, 3u * keys.size());

  // The fourth batch would cross the bound: pushback, nothing ingested.
  const Status refused = rig.client.Ingest("t", keys, deltas);
  EXPECT_EQ(refused.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(detector->backlog_events(), backlog_before);
  EXPECT_EQ(rig.client.stats().pushbacks, 1u);
  EXPECT_EQ(rig.server.pushbacks(), 1u);

  // Drain (unstall both shards) -> queued bytes fall to zero -> admitted.
  ASSERT_TRUE(detector->SetShardStalled(0, false).ok());
  ASSERT_TRUE(detector->SetShardStalled(1, false).ok());
  EXPECT_EQ(detector->backlog_events(), 0u);
  EXPECT_TRUE(rig.client.Ingest("t", keys, deltas).ok());
}

// A torn frame is detected by the checksum, surfaced as DataLoss, and
// healed by exactly one client retry — with nothing ingested twice.
TEST(NetTornFrameTest, SingleRetryRecoversWithoutDoubleIngest) {
  obs::Telemetry telemetry;
  auto options = SmallOptions();
  options.telemetry = &telemetry;
  Rig rig(options);

  ASSERT_TRUE(rig.client.AdvanceTo("t", 0).ok());
  std::vector<size_t> keys;
  std::vector<double> deltas;
  SeededBatch(9, 400, &keys, &deltas);

  rig.transport.TearNextFrame();
  ASSERT_TRUE(rig.client.Ingest("t", keys, deltas).ok());
  EXPECT_EQ(rig.transport.frames_torn(), 1u);
  EXPECT_EQ(rig.client.stats().retries, 1u);
  EXPECT_EQ(rig.server.frames_rejected(), 1u);

  // Conservation: the batch landed exactly once.
  ASSERT_TRUE(rig.client.AdvanceTo("t", 1).ok());
  EXPECT_EQ(telemetry.counter("serve.ingest.events"), keys.size());
  EXPECT_EQ(telemetry.counter("serve.ingest.batches"), 1u);

  // A torn *query* response also heals on retry.
  rig.transport.TearNextFrame();
  const StreamingQueryResult result =
      rig.client.Query("SELECT Top 1 SUM(score), key FROM t GROUP BY key")
          .MoveValue();
  EXPECT_FALSE(result.rows.empty());
  EXPECT_EQ(rig.client.stats().retries, 2u);
}

// Under Buggify the torn-frame section fires on deterministic ordinals but
// never twice in a row, so the one-retry policy always recovers and event
// conservation holds through a storm of corrupted frames.
TEST(NetTornFrameTest, BuggifyStormNeverNeedsASecondRetry) {
  sim::BuggifyOptions buggify;
  buggify.seed = 77;
  buggify.activation_probability = 1.0;
  buggify.fire_probability = 1.0;
  sim::BuggifyEnable(buggify);

  obs::Telemetry telemetry;
  auto options = SmallOptions();
  options.telemetry = &telemetry;
  Rig rig(options);
  ASSERT_TRUE(rig.client.AdvanceTo("t", 0).ok());

  std::vector<size_t> keys;
  std::vector<double> deltas;
  uint64_t sent_events = 0;
  for (uint64_t b = 0; b < 20; ++b) {
    SeededBatch(b, 400, &keys, &deltas);
    ASSERT_TRUE(rig.client.Ingest("t", keys, deltas).ok());
    sent_events += keys.size();
  }
  ASSERT_TRUE(rig.client.AdvanceTo("t", 1).ok());
  sim::BuggifyDisable();

  EXPECT_GT(rig.transport.frames_torn(), 0u);
  EXPECT_EQ(rig.client.stats().retries, rig.transport.frames_torn());
  // Conservation across retries AND the concurrent Buggify stall storm
  // inside the detector: folded + replayed events account for every event
  // sent, exactly once.
  EXPECT_EQ(telemetry.counter("serve.ingest.events") +
                telemetry.counter("serve.ingest.replayed_events"),
            sent_events);
}

TEST(SnapshotFollowerTest, ReplicaAnswersBitIdenticallyToLeader) {
  Rig rig;
  ASSERT_TRUE(rig.client.AdvanceTo("t", 0).ok());
  std::vector<size_t> keys;
  std::vector<double> deltas;
  for (uint64_t b = 0; b < 4; ++b) {
    SeededBatch(b + 100, 400, &keys, &deltas);
    ASSERT_TRUE(rig.client.Ingest("t", keys, deltas).ok());
  }
  ASSERT_TRUE(rig.client.AdvanceTo("t", 1).ok());

  SnapshotFollowerOptions fopts;
  fopts.n = 400;
  fopts.m = 150;
  fopts.seed = 5;
  fopts.iterations = 12;
  auto follower = SnapshotFollower::Create(fopts).MoveValue();
  EXPECT_EQ(follower->Snapshot(), nullptr);
  EXPECT_FALSE(follower->QueryOutliers(2).ok());  // Nothing applied yet.

  ASSERT_TRUE(follower->ReplicateOnce(&rig.client, "t").ok());
  auto leader = rig.tenant();
  const outlier::OutlierSet from_replica =
      follower->QueryOutliers(2).MoveValue();
  const outlier::OutlierSet from_leader =
      leader->QueryOutliers(2).MoveValue();
  EXPECT_EQ(from_replica.mode, from_leader.mode);
  ASSERT_EQ(from_replica.outliers.size(), from_leader.outliers.size());
  for (size_t i = 0; i < from_replica.outliers.size(); ++i) {
    EXPECT_EQ(from_replica.outliers[i].key_index,
              from_leader.outliers[i].key_index);
    EXPECT_EQ(from_replica.outliers[i].value,
              from_leader.outliers[i].value);
    EXPECT_EQ(from_replica.outliers[i].divergence,
              from_leader.outliers[i].divergence);
  }
  const std::vector<outlier::Outlier> top_replica =
      follower->QueryTopK(2).MoveValue();
  const std::vector<outlier::Outlier> top_leader =
      leader->QueryTopK(2).MoveValue();
  ASSERT_EQ(top_replica.size(), top_leader.size());
  for (size_t i = 0; i < top_replica.size(); ++i) {
    EXPECT_EQ(top_replica[i].key_index, top_leader[i].key_index);
    EXPECT_EQ(top_replica[i].value, top_leader[i].value);
  }
}

TEST(SnapshotFollowerTest, ApplyIsMonotoneAndValidates) {
  SnapshotFollowerOptions fopts;
  fopts.n = 400;
  fopts.m = 150;
  fopts.seed = 5;
  auto follower = SnapshotFollower::Create(fopts).MoveValue();

  SketchSnapshot v2;
  v2.version = 2;
  v2.y.assign(150, 1.0);
  ASSERT_TRUE(follower->ApplySnapshot(v2).ok());
  ASSERT_EQ(follower->Snapshot()->version, 2u);

  // Stale and duplicate deliveries are ignored (idempotent replication).
  SketchSnapshot v1;
  v1.version = 1;
  v1.y.assign(150, 9.0);
  ASSERT_TRUE(follower->ApplySnapshot(v1).ok());
  EXPECT_EQ(follower->Snapshot()->version, 2u);
  ASSERT_TRUE(follower->ApplySnapshot(v2).ok());
  EXPECT_EQ(follower->Snapshot()->version, 2u);

  // A measurement that does not match M is rejected.
  SketchSnapshot bad;
  bad.version = 3;
  bad.y.assign(10, 1.0);
  EXPECT_EQ(follower->ApplySnapshot(bad).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(follower->Snapshot()->version, 2u);
}

}  // namespace
}  // namespace csod::serve
