#include "la/vector_ops.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace csod::la {
namespace {

TEST(VectorOpsTest, Dot) {
  EXPECT_DOUBLE_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(Dot({}, {}), 0.0);
}

TEST(VectorOpsTest, Norms) {
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Norm2Squared({3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(Norm2({}), 0.0);
}

TEST(VectorOpsTest, Axpy) {
  std::vector<double> y = {1, 1, 1};
  Axpy(2.0, {1, 2, 3}, &y);
  EXPECT_EQ(y, (std::vector<double>{3, 5, 7}));
}

TEST(VectorOpsTest, Scale) {
  std::vector<double> x = {1, -2, 3};
  Scale(-2.0, &x);
  EXPECT_EQ(x, (std::vector<double>{-2, 4, -6}));
}

TEST(VectorOpsTest, AddSubtract) {
  EXPECT_EQ(Add({1, 2}, {3, 4}), (std::vector<double>{4, 6}));
  EXPECT_EQ(Subtract({1, 2}, {3, 4}), (std::vector<double>{-2, -2}));
}

TEST(VectorOpsTest, DistanceL2) {
  EXPECT_DOUBLE_EQ(DistanceL2({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(DistanceL2({1, 1}, {1, 1}), 0.0);
}

TEST(VectorOpsTest, CauchySchwarzProperty) {
  // |<a,b>| <= ||a|| * ||b|| over a few deterministic vectors.
  const std::vector<double> a = {0.3, -1.7, 2.2, 0.0, 5.1};
  const std::vector<double> b = {-2.0, 0.4, 1.1, 3.3, -0.9};
  EXPECT_LE(std::fabs(Dot(a, b)), Norm2(a) * Norm2(b) + 1e-12);
}

}  // namespace
}  // namespace csod::la
