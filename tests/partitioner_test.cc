#include "workload/partitioner.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "workload/generators.h"

namespace csod::workload {
namespace {

std::vector<double> SumSlices(const std::vector<cs::SparseSlice>& slices,
                              size_t n) {
  std::vector<double> x(n, 0.0);
  for (const auto& slice : slices) {
    for (size_t j = 0; j < slice.indices.size(); ++j) {
      x[slice.indices[j]] += slice.values[j];
    }
  }
  return x;
}

std::vector<double> TestData() {
  MajorityDominatedOptions options;
  options.n = 500;
  options.sparsity = 25;
  options.seed = 77;
  return GenerateMajorityDominated(options).Value();
}

// Property: every strategy preserves the global aggregate bitwise.
class PartitionExactnessTest
    : public ::testing::TestWithParam<PartitionStrategy> {};

TEST_P(PartitionExactnessTest, SlicesSumBitwiseExactly) {
  const std::vector<double> x = TestData();
  PartitionOptions options;
  options.num_nodes = 8;
  options.strategy = GetParam();
  options.seed = 5;
  options.cancellation_noise =
      GetParam() == PartitionStrategy::kSkewedSplit ? 300.0 : 0.0;
  auto slices = PartitionAdditive(x, options);
  ASSERT_TRUE(slices.ok());
  ASSERT_EQ(slices.Value().size(), 8u);
  const std::vector<double> resum = SumSlices(slices.Value(), x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(resum[i], x[i]) << "key " << i;  // Bitwise, not approximate.
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, PartitionExactnessTest,
                         ::testing::Values(PartitionStrategy::kUniformSplit,
                                           PartitionStrategy::kSkewedSplit,
                                           PartitionStrategy::kByKey));

TEST(PartitionerTest, SingleNodeGetsEverything) {
  const std::vector<double> x = TestData();
  PartitionOptions options;
  options.num_nodes = 1;
  options.strategy = PartitionStrategy::kUniformSplit;
  auto slices = PartitionAdditive(x, options);
  ASSERT_TRUE(slices.ok());
  const std::vector<double> resum = SumSlices(slices.Value(), x.size());
  EXPECT_EQ(resum, x);
}

TEST(PartitionerTest, ByKeyPlacesEachKeyOnOneNode) {
  const std::vector<double> x = TestData();
  PartitionOptions options;
  options.num_nodes = 4;
  options.strategy = PartitionStrategy::kByKey;
  auto slices = PartitionAdditive(x, options);
  ASSERT_TRUE(slices.ok());
  std::vector<int> owners(x.size(), 0);
  for (const auto& slice : slices.Value()) {
    for (size_t idx : slice.indices) ++owners[idx];
  }
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(owners[i], x[i] == 0.0 ? 0 : 1) << "key " << i;
  }
}

TEST(PartitionerTest, UniformSplitSpreadsKeys) {
  const std::vector<double> x = TestData();
  PartitionOptions options;
  options.num_nodes = 4;
  options.strategy = PartitionStrategy::kUniformSplit;
  auto slices = PartitionAdditive(x, options);
  ASSERT_TRUE(slices.ok());
  // Every node holds (almost) every key.
  for (const auto& slice : slices.Value()) {
    EXPECT_GT(slice.nnz(), x.size() / 2);
  }
}

TEST(PartitionerTest, CancellationNoiseMakesLocalLookDifferent) {
  // With cancellation noise, some local value diverges from its key's
  // global value by more than the noise floor — the "local outlier that is
  // globally normal" effect.
  std::vector<double> x(100, 1000.0);
  PartitionOptions options;
  options.num_nodes = 4;
  options.strategy = PartitionStrategy::kSkewedSplit;
  options.cancellation_noise = 5000.0;
  options.seed = 3;
  auto slices = PartitionAdditive(x, options);
  ASSERT_TRUE(slices.ok());

  // Global preserved bitwise.
  const std::vector<double> resum = SumSlices(slices.Value(), x.size());
  for (size_t i = 0; i < x.size(); ++i) EXPECT_EQ(resum[i], x[i]);

  // Some local absolute value far exceeds the global per-node share.
  double max_local = 0.0;
  for (const auto& slice : slices.Value()) {
    for (double v : slice.values) max_local = std::max(max_local, std::fabs(v));
  }
  EXPECT_GT(max_local, 1500.0);
}

TEST(PartitionerTest, MaxHostsRespected) {
  const std::vector<double> x = TestData();
  PartitionOptions options;
  options.num_nodes = 8;
  options.strategy = PartitionStrategy::kSkewedSplit;
  options.max_hosts_per_key = 2;
  options.seed = 1;
  auto slices = PartitionAdditive(x, options);
  ASSERT_TRUE(slices.ok());
  std::vector<int> hosts(x.size(), 0);
  for (const auto& slice : slices.Value()) {
    for (size_t idx : slice.indices) ++hosts[idx];
  }
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(hosts[i], 2) << "key " << i;
  }
}

TEST(PartitionerTest, InvalidOptionsRejected) {
  PartitionOptions options;
  options.num_nodes = 0;
  EXPECT_FALSE(PartitionAdditive({1.0}, options).ok());
  options.num_nodes = 2;
  options.cancellation_noise = -1.0;
  EXPECT_FALSE(PartitionAdditive({1.0}, options).ok());
}

TEST(PartitionerTest, Deterministic) {
  const std::vector<double> x = TestData();
  PartitionOptions options;
  options.num_nodes = 4;
  options.seed = 9;
  auto a = PartitionAdditive(x, options);
  auto b = PartitionAdditive(x, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t l = 0; l < 4; ++l) {
    EXPECT_EQ(a.Value()[l].indices, b.Value()[l].indices);
    EXPECT_EQ(a.Value()[l].values, b.Value()[l].values);
  }
}

}  // namespace
}  // namespace csod::workload
