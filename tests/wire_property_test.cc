// Property-based round-trip tests (ISSUE 4 satellite) for the binary wire
// format and the telemetry JSON snapshot:
//  - hundreds of seeded random payloads survive encode → decode → encode
//    bit-identically (the second encoding equals the first byte-for-byte,
//    which subsumes value equality including -0.0 and denormals),
//  - empty payloads round-trip,
//  - non-finite payload entries are rejected at encode time for both
//    message kinds (a NaN must never leave the node that produced it),
//  - the maximum representable 32-bit key id round-trips,
//  - two identical seeded protocol runs produce byte-identical
//    deterministic telemetry snapshots (the double-run diff contract the
//    bench scripts rely on).

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cs/compressor.h"
#include "dist/cs_protocol.h"
#include "dist/wire_format.h"
#include "obs/telemetry.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

namespace csod::dist {
namespace {

// Random finite doubles spanning many magnitudes, signs, and the tricky
// special values (±0, denormals, extreme normals).
class DoubleFuzzer {
 public:
  explicit DoubleFuzzer(uint64_t seed) : rng_(seed) {}

  double Next() {
    switch (rng_() % 8) {
      case 0:
        return 0.0;
      case 1:
        return -0.0;
      case 2:
        return std::numeric_limits<double>::denorm_min() *
               static_cast<double>(1 + rng_() % 1000);
      case 3:
        return std::numeric_limits<double>::max() /
               static_cast<double>(1 + rng_() % 1000);
      case 4:
        return std::numeric_limits<double>::lowest() /
               static_cast<double>(1 + rng_() % 1000);
      default: {
        std::uniform_real_distribution<double> mantissa(-1.0, 1.0);
        std::uniform_int_distribution<int> exponent(-300, 300);
        return std::ldexp(mantissa(rng_), exponent(rng_));
      }
    }
  }

  std::mt19937_64& rng() { return rng_; }

 private:
  std::mt19937_64 rng_;
};

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

TEST(WirePropertyTest, MeasurementEncodeDecodeEncodeIsBitIdentical) {
  DoubleFuzzer fuzz(0xC50Du);
  for (int trial = 0; trial < 200; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const size_t m = fuzz.rng()() % 64;  // Includes the empty message.
    std::vector<double> y(m);
    for (double& v : y) v = fuzz.Next();

    auto encoded = EncodeMeasurement(y);
    ASSERT_TRUE(encoded.ok());
    EXPECT_EQ(encoded.Value().size(), MeasurementWireSize(m));

    auto decoded = DecodeMeasurement(encoded.Value());
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.Value().size(), m);
    for (size_t i = 0; i < m; ++i) {
      EXPECT_EQ(Bits(decoded.Value()[i]), Bits(y[i])) << "row " << i;
    }

    auto reencoded = EncodeMeasurement(decoded.Value());
    ASSERT_TRUE(reencoded.ok());
    EXPECT_EQ(reencoded.Value(), encoded.Value());
  }
}

TEST(WirePropertyTest, KeyValueEncodeDecodeEncodeIsBitIdentical) {
  DoubleFuzzer fuzz(0xBEEFu);
  for (int trial = 0; trial < 200; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const size_t nnz = fuzz.rng()() % 48;  // Includes the empty slice.
    cs::SparseSlice slice;
    slice.indices.resize(nnz);
    slice.values.resize(nnz);
    for (size_t i = 0; i < nnz; ++i) {
      slice.indices[i] = fuzz.rng()() % (uint64_t{UINT32_MAX} + 1);
      slice.values[i] = fuzz.Next();
    }

    auto encoded = EncodeKeyValues(slice);
    ASSERT_TRUE(encoded.ok());
    EXPECT_EQ(encoded.Value().size(), KeyValueWireSize(nnz));

    auto decoded = DecodeKeyValues(encoded.Value());
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.Value().nnz(), nnz);
    for (size_t i = 0; i < nnz; ++i) {
      EXPECT_EQ(decoded.Value().indices[i], slice.indices[i]);
      EXPECT_EQ(Bits(decoded.Value().values[i]), Bits(slice.values[i]));
    }

    auto reencoded = EncodeKeyValues(decoded.Value());
    ASSERT_TRUE(reencoded.ok());
    EXPECT_EQ(reencoded.Value(), encoded.Value());
  }
}

TEST(WirePropertyTest, MaxKeyIdRoundTrips) {
  cs::SparseSlice slice;
  slice.indices = {0, UINT32_MAX};
  slice.values = {1.0, -2.5};
  auto encoded = EncodeKeyValues(slice);
  ASSERT_TRUE(encoded.ok());
  auto decoded = DecodeKeyValues(encoded.Value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.Value().indices[1], static_cast<size_t>(UINT32_MAX));

  // One past the 32-bit key space is rejected, not truncated — and with
  // InvalidArgument (a caller bug), never OutOfRange or a silent wrap.
  slice.indices[1] = uint64_t{UINT32_MAX} + 1;
  auto rejected = EncodeKeyValues(slice);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  // Same verdict far past the boundary (the top size_t bit set).
  slice.indices[1] = size_t{1} << 63;
  rejected = EncodeKeyValues(slice);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(WirePropertyTest, NonFinitePayloadsRejectedAtEncodeTime) {
  const double bad[] = {std::nan(""), std::numeric_limits<double>::infinity(),
                        -std::numeric_limits<double>::infinity()};
  for (double v : bad) {
    std::vector<double> y = {1.0, v, 3.0};
    auto encoded = EncodeMeasurement(y);
    EXPECT_FALSE(encoded.ok());
    EXPECT_EQ(encoded.status().code(), StatusCode::kInvalidArgument);

    cs::SparseSlice slice;
    slice.indices = {7, 8};
    slice.values = {2.0, v};
    auto kv = EncodeKeyValues(slice);
    EXPECT_FALSE(kv.ok());
    EXPECT_EQ(kv.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(WirePropertyTest, RandomCorruptionNeverDecodesSilently) {
  // Flipping any single byte must be caught by the checksum (or a size /
  // magic check) — decode never "succeeds" with different content.
  DoubleFuzzer fuzz(0xFACEu);
  std::vector<double> y(9);
  for (double& v : y) v = fuzz.Next();
  const std::string good = EncodeMeasurement(y).Value();
  for (int trial = 0; trial < 100; ++trial) {
    std::string bad = good;
    const size_t pos = fuzz.rng()() % bad.size();
    const char flip = static_cast<char>(1 + fuzz.rng()() % 255);
    bad[pos] = static_cast<char>(bad[pos] ^ flip);
    auto decoded = DecodeMeasurement(bad);
    if (decoded.ok()) {
      // Only acceptable if the flip somehow reproduced the original.
      EXPECT_EQ(bad, good);
    }
  }
}

// Runs the CS protocol over a freshly built seeded workload and returns
// the deterministic telemetry snapshot.
std::string SeededRunSnapshot(uint64_t seed) {
  workload::MajorityDominatedOptions gen;
  gen.n = 500;
  gen.sparsity = 12;
  gen.seed = seed;
  auto global = workload::GenerateMajorityDominated(gen).Value();

  workload::PartitionOptions part;
  part.num_nodes = 6;
  part.strategy = workload::PartitionStrategy::kSkewedSplit;
  part.cancellation_noise = 2000.0;
  part.seed = seed + 1;
  auto slices = workload::PartitionAdditive(global, part).Value();
  Cluster cluster(gen.n);
  for (auto& slice : slices) EXPECT_TRUE(cluster.AddNode(std::move(slice)).ok());

  CsProtocolOptions options;
  options.m = 150;
  options.seed = 40 + seed;
  options.iterations = gen.sparsity + 4;
  CsOutlierProtocol protocol(options);
  obs::Telemetry telemetry;
  protocol.set_telemetry(&telemetry);
  CommStats comm;
  EXPECT_TRUE(protocol.Run(cluster, 5, &comm).ok());
  return telemetry.SnapshotJson(/*deterministic=*/true);
}

TEST(WirePropertyTest, TelemetrySnapshotByteIdenticalAcrossSeededRuns) {
  const std::string first = SeededRunSnapshot(17);
  const std::string second = SeededRunSnapshot(17);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
  // The snapshot is not vacuous: it carries the protocol's counters.
  EXPECT_NE(first.find("comm.bytes.measurements"), std::string::npos);
  EXPECT_NE(first.find("bomp.recover"), std::string::npos);
  // A different seed produces different recorded values somewhere.
  EXPECT_NE(SeededRunSnapshot(18), first);
}

}  // namespace
}  // namespace csod::dist
