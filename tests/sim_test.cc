// Simulation-harness tests (DESIGN.md §15): Buggify's pure-function
// determinism contract, scenario derivation stability, and end-to-end
// RunScenario reproducibility — the properties scripts/run_simulation.sh
// and the sim_corpus regression target lean on.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/buggify.h"
#include "sim/runner.h"
#include "sim/scenario.h"

namespace csod::sim {
namespace {

// Collects the fire pattern of `hits` sequential hits of one section.
std::vector<bool> FirePattern(const char* section, size_t hits) {
  std::vector<bool> pattern;
  pattern.reserve(hits);
  for (size_t i = 0; i < hits; ++i) {
    pattern.push_back(CSOD_BUGGIFY(section));
  }
  return pattern;
}

class BuggifyTest : public ::testing::Test {
 protected:
  // Every test leaves the global registry disarmed.
  void TearDown() override { BuggifyDisable(); }
};

TEST_F(BuggifyTest, DisabledSectionsAreInertAndUncounted) {
  BuggifyDisable();
  EXPECT_FALSE(BuggifyEnabled());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(CSOD_BUGGIFY("test.inert"));
    EXPECT_FALSE(CSOD_BUGGIFY_AT("test.inert_at", i));
  }
  EXPECT_EQ(BuggifyFireCount(), 0u);
}

TEST_F(BuggifyTest, SameSeedReplaysTheIdenticalFireSchedule) {
  BuggifyOptions options;
  options.seed = 42;
  options.activation_probability = 1.0;
  options.fire_probability = 0.5;

  BuggifyEnable(options);
  const std::vector<bool> first = FirePattern("test.replay", 200);
  // Re-enabling resets the section ordinals: the schedule must replay
  // bit-identically, not continue where it left off.
  BuggifyEnable(options);
  const std::vector<bool> second = FirePattern("test.replay", 200);
  EXPECT_EQ(first, second);

  // The pattern is non-trivial at fire_probability 0.5 over 200 hits.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 200);
}

TEST_F(BuggifyTest, DifferentSeedsProduceDifferentSchedules) {
  BuggifyOptions options;
  options.activation_probability = 1.0;
  options.fire_probability = 0.5;
  options.seed = 1;
  BuggifyEnable(options);
  const std::vector<bool> a = FirePattern("test.seeds", 200);
  options.seed = 2;
  BuggifyEnable(options);
  const std::vector<bool> b = FirePattern("test.seeds", 200);
  EXPECT_NE(a, b);
}

TEST_F(BuggifyTest, FireAtIsAPureFunctionOfTheOrdinal) {
  BuggifyOptions options;
  options.seed = 7;
  options.activation_probability = 1.0;
  options.fire_probability = 0.5;
  BuggifyEnable(options);

  // Query the same ordinals in two different orders: per-ordinal answers
  // must agree — the decision depends on (seed, section, ordinal) only,
  // never on call order or a hidden counter.
  std::vector<bool> forward(64), backward(64);
  for (size_t i = 0; i < 64; ++i) {
    forward[i] = CSOD_BUGGIFY_AT("test.pure", i);
  }
  for (size_t i = 64; i-- > 0;) {
    backward[i] = CSOD_BUGGIFY_AT("test.pure", i);
  }
  EXPECT_EQ(forward, backward);
}

TEST_F(BuggifyTest, ActivationGatesTheWholeSection) {
  BuggifyOptions options;
  options.seed = 11;
  options.fire_probability = 1.0;
  options.activation_probability = 0.0;
  BuggifyEnable(options);
  // Never activated: no hit may fire even at fire probability 1.
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_FALSE(CSOD_BUGGIFY("test.gated"));
  }
  options.activation_probability = 1.0;
  BuggifyEnable(options);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(CSOD_BUGGIFY("test.gated"));
  }
}

TEST_F(BuggifyTest, ReportCountsHitsAndFiresSinceEnable) {
  BuggifyOptions options;
  options.seed = 3;
  options.activation_probability = 1.0;
  options.fire_probability = 1.0;
  BuggifyEnable(options);
  for (size_t i = 0; i < 10; ++i) CSOD_BUGGIFY("test.report");
  bool found = false;
  for (const BuggifySectionReport& section : BuggifyReport()) {
    if (section.name != "test.report") continue;
    found = true;
    EXPECT_TRUE(section.activated);
    EXPECT_EQ(section.hits, 10u);
    EXPECT_EQ(section.fires, 10u);
  }
  EXPECT_TRUE(found);
  // Re-enabling resets the counts.
  BuggifyEnable(options);
  for (const BuggifySectionReport& section : BuggifyReport()) {
    if (section.name == "test.report") {
      EXPECT_EQ(section.hits, 0u);
      EXPECT_EQ(section.fires, 0u);
    }
  }
}

TEST(ScenarioTest, DerivationIsAPureFunctionOfTheSeed) {
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    const Scenario a = ScenarioFromSeed(seed);
    const Scenario b = ScenarioFromSeed(seed);
    EXPECT_EQ(ScenarioToString(a), ScenarioToString(b)) << seed;
    EXPECT_EQ(a.seed, seed);
  }
}

TEST(ScenarioTest, SeedsCoverEveryScenarioKind) {
  // 256 consecutive seeds must hit all nine kinds — the weighted table
  // cannot silently starve a protocol of coverage.
  std::vector<bool> seen(static_cast<size_t>(ScenarioKind::kServe) + 1, false);
  for (uint64_t seed = 1; seed <= 256; ++seed) {
    seen[static_cast<size_t>(ScenarioFromSeed(seed).kind)] = true;
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "kind " << i << " never generated";
  }
}

TEST(ScenarioTest, BoundsHoldAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    const Scenario s = ScenarioFromSeed(seed);
    EXPECT_GE(s.n, 384u);
    EXPECT_GT(s.num_nodes, 1u);
    EXPECT_GT(s.k, 0u);
    EXPECT_TRUE(s.thread_limit == 1 || s.thread_limit == 2 ||
                s.thread_limit == 8)
        << s.thread_limit;
    if (s.buggify) {
      EXPECT_GT(s.buggify_options.activation_probability, 0.0);
      EXPECT_GT(s.buggify_options.fire_probability, 0.0);
    }
  }
}

// End-to-end determinism: the full scenario outcome (digest + violations)
// replays bit-identically. RunScenario itself re-executes at a second
// parallelism limit internally, so one passing call already certifies
// thread-limit independence; the outer double-run certifies replay.
TEST(RunScenarioTest, OutcomeReplaysBitIdentically) {
  // One cheap seed per family keeps this inside tier-1 time budgets; the
  // 200-scenario sweep lives in scripts/run_simulation.sh.
  for (const uint64_t seed : {2ull, 5ull, 19ull, 29ull, 33ull}) {
    const ScenarioOutcome first = RunScenario(ScenarioFromSeed(seed));
    const ScenarioOutcome second = RunScenario(ScenarioFromSeed(seed));
    EXPECT_EQ(first.digest, second.digest) << "seed " << seed;
    EXPECT_EQ(first.violations, second.violations) << "seed " << seed;
    EXPECT_TRUE(first.ok()) << "seed " << seed << ": "
                            << (first.violations.empty()
                                    ? ""
                                    : first.violations.front());
  }
}

TEST(RunScenarioTest, ReplaySeedMatchesTheSweepOutcome) {
  std::string line;
  const ScenarioOutcome replayed = ReplaySeed(17, &line);
  const ScenarioOutcome direct = RunScenario(ScenarioFromSeed(17));
  EXPECT_EQ(replayed.digest, direct.digest);
  EXPECT_EQ(line, ScenarioToString(ScenarioFromSeed(17)));
}

}  // namespace
}  // namespace csod::sim
