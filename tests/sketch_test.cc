#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "dist/cs_protocol.h"
#include "outlier/metrics.h"
#include "sketch/count_min.h"
#include "sketch/count_sketch.h"
#include "sketch/hyperloglog.h"
#include "sketch/sketch_protocols.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

namespace csod::sketch {
namespace {

TEST(CountMinTest, CreateValidates) {
  EXPECT_FALSE(CountMinSketch::Create(0, 3, 1).ok());
  EXPECT_FALSE(CountMinSketch::Create(16, 0, 1).ok());
  EXPECT_TRUE(CountMinSketch::Create(16, 3, 1).ok());
}

TEST(CountMinTest, NeverUnderestimatesNonNegative) {
  auto sketch = CountMinSketch::Create(64, 4, 7).MoveValue();
  Rng rng(3);
  std::vector<double> truth(500, 0.0);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t key = rng.NextBounded(500);
    const double delta = rng.NextDouble() * 10.0;
    sketch.Update(key, delta);
    truth[key] += delta;
  }
  for (uint64_t key = 0; key < 500; ++key) {
    EXPECT_GE(sketch.Estimate(key), truth[key] - 1e-9) << "key " << key;
  }
}

TEST(CountMinTest, ExactWhenNoCollisions) {
  auto sketch = CountMinSketch::Create(4096, 4, 7).MoveValue();
  sketch.Update(5, 10.0);
  sketch.Update(9, 3.0);
  EXPECT_DOUBLE_EQ(sketch.Estimate(5), 10.0);
  EXPECT_DOUBLE_EQ(sketch.Estimate(9), 3.0);
  EXPECT_DOUBLE_EQ(sketch.Estimate(123), 0.0);
}

TEST(CountMinTest, MergeEqualsCombinedStream) {
  auto a = CountMinSketch::Create(128, 3, 5).MoveValue();
  auto b = CountMinSketch::Create(128, 3, 5).MoveValue();
  auto combined = CountMinSketch::Create(128, 3, 5).MoveValue();
  for (uint64_t k = 0; k < 50; ++k) {
    a.Update(k, 1.0);
    combined.Update(k, 1.0);
    b.Update(k * 3, 2.0);
    combined.Update(k * 3, 2.0);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  for (uint64_t k = 0; k < 150; ++k) {
    EXPECT_DOUBLE_EQ(a.Estimate(k), combined.Estimate(k)) << "key " << k;
  }
}

TEST(CountMinTest, MergeRejectsIncompatible) {
  auto a = CountMinSketch::Create(128, 3, 5).MoveValue();
  auto b = CountMinSketch::Create(64, 3, 5).MoveValue();
  auto c = CountMinSketch::Create(128, 3, 6).MoveValue();
  EXPECT_FALSE(a.Merge(b).ok());
  EXPECT_FALSE(a.Merge(c).ok());
}

TEST(CountSketchTest, UnbiasedOnSignedData) {
  // Mean estimate over many independent sketches approaches the truth.
  const uint64_t kTarget = 7;
  double total = 0.0;
  const int kRuns = 60;
  for (int run = 0; run < kRuns; ++run) {
    auto sketch = CountSketch::Create(32, 5, 100 + run).MoveValue();
    Rng rng(run);
    sketch.Update(kTarget, 25.0);
    for (int i = 0; i < 200; ++i) {
      sketch.Update(rng.NextBounded(1000) + 10, rng.NextGaussian() * 5.0);
    }
    total += sketch.Estimate(kTarget);
  }
  EXPECT_NEAR(total / kRuns, 25.0, 5.0);
}

TEST(CountSketchTest, HandlesNegativeValues) {
  auto sketch = CountSketch::Create(2048, 5, 11).MoveValue();
  sketch.Update(1, -500.0);
  sketch.Update(2, 300.0);
  EXPECT_NEAR(sketch.Estimate(1), -500.0, 1e-9);
  EXPECT_NEAR(sketch.Estimate(2), 300.0, 1e-9);
}

TEST(CountSketchTest, MergeEqualsCombinedStream) {
  auto a = CountSketch::Create(256, 5, 9).MoveValue();
  auto b = CountSketch::Create(256, 5, 9).MoveValue();
  auto combined = CountSketch::Create(256, 5, 9).MoveValue();
  Rng rng(21);
  for (int i = 0; i < 300; ++i) {
    const uint64_t key = rng.NextBounded(100);
    const double delta = rng.NextGaussian();
    if (i % 2 == 0) {
      a.Update(key, delta);
    } else {
      b.Update(key, delta);
    }
    combined.Update(key, delta);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  for (uint64_t key = 0; key < 100; ++key) {
    EXPECT_NEAR(a.Estimate(key), combined.Estimate(key), 1e-9);
  }
}

TEST(HyperLogLogTest, CreateValidates) {
  EXPECT_FALSE(HyperLogLog::Create(3).ok());
  EXPECT_FALSE(HyperLogLog::Create(17).ok());
  EXPECT_TRUE(HyperLogLog::Create(12).ok());
}

TEST(HyperLogLogTest, EmptyEstimatesZero) {
  auto hll = HyperLogLog::Create(10).MoveValue();
  EXPECT_NEAR(hll.Estimate(), 0.0, 1e-9);
}

TEST(HyperLogLogTest, AddIsIdempotentPerKey) {
  auto hll = HyperLogLog::Create(10).MoveValue();
  for (int rep = 0; rep < 5; ++rep) {
    for (uint64_t key = 0; key < 100; ++key) hll.Add(key);
  }
  EXPECT_NEAR(hll.Estimate(), 100.0, 10.0);
}

TEST(HyperLogLogTest, AccuracyAcrossCardinalities) {
  for (uint64_t cardinality : {100u, 1000u, 50000u}) {
    auto hll = HyperLogLog::Create(12).MoveValue();
    for (uint64_t key = 0; key < cardinality; ++key) {
      hll.Add(key * 2654435761u + 7);
    }
    // 2^12 registers: ~1.6% standard error; allow 6%.
    EXPECT_NEAR(hll.Estimate(), static_cast<double>(cardinality),
                0.06 * cardinality)
        << "cardinality " << cardinality;
  }
}

TEST(HyperLogLogTest, MergeEqualsUnion) {
  auto a = HyperLogLog::Create(12, 5).MoveValue();
  auto b = HyperLogLog::Create(12, 5).MoveValue();
  auto combined = HyperLogLog::Create(12, 5).MoveValue();
  for (uint64_t key = 0; key < 3000; ++key) {
    (key % 2 ? a : b).Add(key);
    combined.Add(key);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.Estimate(), combined.Estimate());
}

TEST(HyperLogLogTest, MergeRejectsIncompatible) {
  auto a = HyperLogLog::Create(10, 1).MoveValue();
  auto b = HyperLogLog::Create(11, 1).MoveValue();
  auto c = HyperLogLog::Create(10, 2).MoveValue();
  EXPECT_FALSE(a.Merge(b).ok());
  EXPECT_FALSE(a.Merge(c).ok());
}

TEST(HyperLogLogTest, EstimatesWorkloadSparsity) {
  // The library use case: estimate the number of active keys (F0) from
  // per-node sketches to size M before running the CS protocol.
  workload::MajorityDominatedOptions gen;
  gen.n = 4000;
  gen.sparsity = 100;
  gen.seed = 3;
  auto global = workload::GenerateMajorityDominated(gen).MoveValue();

  workload::PartitionOptions part;
  part.num_nodes = 5;
  part.strategy = workload::PartitionStrategy::kByKey;
  part.seed = 4;
  auto slices = workload::PartitionAdditive(global, part).MoveValue();

  auto merged = HyperLogLog::Create(12, 9).MoveValue();
  for (const auto& slice : slices) {
    auto local = HyperLogLog::Create(12, 9).MoveValue();
    for (size_t idx : slice.indices) local.Add(idx);
    ASSERT_TRUE(merged.Merge(local).ok());
  }
  // All 4000 keys are non-zero here; the estimate must see them all.
  EXPECT_NEAR(merged.Estimate(), 4000.0, 0.06 * 4000.0);
}

// The headline comparison (Section 7.2 discussion): at equal communication
// budgets, the CS protocol recovers mode-dominated outliers exactly while
// the CountSketch estimates drown in the mode's energy.
TEST(SketchProtocolTest, CsBeatsCountSketchOnModeDominatedData) {
  const size_t n = 2000;
  const size_t k = 5;
  workload::MajorityDominatedOptions gen;
  gen.n = n;
  gen.sparsity = 20;
  gen.mode = 5000.0;
  gen.min_divergence = 2000.0;
  gen.max_divergence = 20000.0;
  gen.seed = 13;
  auto global = workload::GenerateMajorityDominated(gen).MoveValue();
  const auto truth = outlier::ExactKOutliers(global, k);

  workload::PartitionOptions part;
  part.num_nodes = 8;
  part.strategy = workload::PartitionStrategy::kSkewedSplit;
  part.seed = 14;
  auto slices = workload::PartitionAdditive(global, part).MoveValue();
  dist::Cluster cluster(n);
  for (auto& slice : slices) {
    ASSERT_TRUE(cluster.AddNode(std::move(slice)).ok());
  }

  // Equal budget: 300 tuples of 8 bytes per node.
  dist::CsProtocolOptions cs_options;
  cs_options.m = 300;
  cs_options.seed = 5;
  cs_options.iterations = 30;
  dist::CsOutlierProtocol cs_protocol(cs_options);
  dist::CommStats cs_comm;
  auto cs_result = cs_protocol.Run(cluster, k, &cs_comm).MoveValue();

  CountSketchProtocolOptions sk_options;
  sk_options.width = 60;
  sk_options.depth = 5;  // 300 counters.
  sk_options.seed = 5;
  CountSketchOutlierProtocol sk_protocol(sk_options);
  dist::CommStats sk_comm;
  auto sk_result = sk_protocol.Run(cluster, k, &sk_comm).MoveValue();

  EXPECT_EQ(cs_comm.bytes_total(), sk_comm.bytes_total());
  const double cs_ek = outlier::ErrorOnKey(truth, cs_result);
  const double sk_ek = outlier::ErrorOnKey(truth, sk_result);
  EXPECT_EQ(cs_ek, 0.0);
  EXPECT_GT(sk_ek, 0.3);  // CountSketch noise ~ b*sqrt(N/width) >> outliers.
}

TEST(SketchProtocolTest, CountSketchTopKFindsHeavyHitters) {
  // On zero-mode data with towering heavy hitters, CountSketch top-k works
  // — the regime it was designed for.
  const size_t n = 3000;
  std::vector<double> global(n, 0.0);
  global[10] = 100000.0;
  global[200] = 80000.0;
  global[2999] = 60000.0;
  Rng rng(3);
  for (size_t i = 0; i < n; ++i) {
    if (global[i] == 0.0) global[i] = rng.NextDouble() * 10.0;
  }

  workload::PartitionOptions part;
  part.num_nodes = 4;
  part.strategy = workload::PartitionStrategy::kUniformSplit;
  part.seed = 4;
  auto slices = workload::PartitionAdditive(global, part).MoveValue();
  dist::Cluster cluster(n);
  for (auto& slice : slices) {
    ASSERT_TRUE(cluster.AddNode(std::move(slice)).ok());
  }

  CountSketchProtocolOptions options;
  options.width = 256;
  options.depth = 5;
  options.seed = 8;
  dist::CommStats comm;
  auto result = RunCountSketchTopK(cluster, 3, options, &comm).MoveValue();
  ASSERT_EQ(result.top.size(), 3u);
  EXPECT_EQ(result.top[0].key_index, 10u);
  EXPECT_EQ(result.top[1].key_index, 200u);
  EXPECT_EQ(result.top[2].key_index, 2999u);
}

TEST(SketchProtocolTest, Validation) {
  dist::Cluster empty(10);
  CountSketchProtocolOptions options;
  options.width = 8;
  CountSketchOutlierProtocol protocol(options);
  dist::CommStats comm;
  EXPECT_FALSE(protocol.Run(empty, 3, &comm).ok());
  EXPECT_FALSE(protocol.Run(empty, 3, nullptr).ok());

  dist::Cluster cluster(10);
  ASSERT_TRUE(cluster.AddNode({}).ok());
  CountSketchProtocolOptions bad;
  bad.width = 0;
  CountSketchOutlierProtocol bad_protocol(bad);
  EXPECT_FALSE(bad_protocol.Run(cluster, 3, &comm).ok());
}

}  // namespace
}  // namespace csod::sketch
