// Telemetry-off bit-identity test (ISSUE 4 satellite): attaching a live
// obs::Telemetry sink must not change a single bit of any protocol's
// answer or its communication accounting — instrumentation observes the
// pipeline, it never participates in it. Verified for every protocol in
// the repo under parallelism limits {1, 2, 8} and forced-portable SIMD
// (the deterministic dispatch floor), so a scheduling or dispatch change
// can't mask a telemetry-induced divergence.

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/simd.h"
#include "dist/adaptive_cs_protocol.h"
#include "dist/all_protocol.h"
#include "dist/amp_protocol.h"
#include "dist/cs_protocol.h"
#include "dist/kplusdelta_protocol.h"
#include "dist/topk_protocols.h"
#include "obs/telemetry.h"
#include "outlier/outlier.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

namespace csod::dist {
namespace {

class ScopedParallelismLimit {
 public:
  explicit ScopedParallelismLimit(size_t limit)
      : previous_(GetParallelismLimit()) {
    SetParallelismLimit(limit);
  }
  ~ScopedParallelismLimit() { SetParallelismLimit(previous_); }

 private:
  size_t previous_;
};

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::Level level)
      : previous_(simd::SetLevelForTesting(level)) {}
  ~ScopedSimdLevel() { simd::SetLevelForTesting(previous_); }

 private:
  simd::Level previous_;
};

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

// Bitwise comparison: EXPECT_DOUBLE_EQ would hide a ULP-level divergence,
// and "bit-identical with telemetry off" is the actual contract.
void ExpectBitIdentical(const outlier::OutlierSet& with,
                        const outlier::OutlierSet& without) {
  EXPECT_EQ(Bits(with.mode), Bits(without.mode));
  ASSERT_EQ(with.outliers.size(), without.outliers.size());
  for (size_t i = 0; i < with.outliers.size(); ++i) {
    EXPECT_EQ(with.outliers[i].key_index, without.outliers[i].key_index);
    EXPECT_EQ(Bits(with.outliers[i].value), Bits(without.outliers[i].value));
    EXPECT_EQ(Bits(with.outliers[i].divergence),
              Bits(without.outliers[i].divergence));
  }
}

void ExpectBitIdentical(const TopKRunResult& with,
                        const TopKRunResult& without) {
  ASSERT_EQ(with.top.size(), without.top.size());
  for (size_t i = 0; i < with.top.size(); ++i) {
    EXPECT_EQ(with.top[i].key_index, without.top[i].key_index);
    EXPECT_EQ(Bits(with.top[i].value), Bits(without.top[i].value));
  }
}

void ExpectSameAccounting(const CommStats& with, const CommStats& without) {
  EXPECT_EQ(with.bytes_total(), without.bytes_total());
  EXPECT_EQ(with.tuples_total(), without.tuples_total());
  EXPECT_EQ(with.rounds(), without.rounds());
  EXPECT_EQ(with.bytes_by_phase(), without.bytes_by_phase());
}

std::unique_ptr<Cluster> MakeCluster(size_t n, size_t s, size_t num_nodes,
                                     workload::PartitionStrategy strategy,
                                     uint64_t seed,
                                     std::vector<double>* global_out,
                                     double max_divergence = 10000.0) {
  workload::MajorityDominatedOptions gen;
  gen.n = n;
  gen.sparsity = s;
  gen.seed = seed;
  gen.max_divergence = max_divergence;
  auto global = workload::GenerateMajorityDominated(gen).Value();

  workload::PartitionOptions part;
  part.num_nodes = num_nodes;
  part.strategy = strategy;
  part.seed = seed + 1;
  if (strategy == workload::PartitionStrategy::kSkewedSplit) {
    part.cancellation_noise = 2000.0;
  }
  auto slices = workload::PartitionAdditive(global, part).Value();
  auto cluster = std::make_unique<Cluster>(n);
  for (auto& slice : slices) {
    EXPECT_TRUE(cluster->AddNode(std::move(slice)).ok());
  }
  if (global_out != nullptr) *global_out = std::move(global);
  return cluster;
}

// Runs `run` twice — once against a live sink, once against the disabled
// singleton — and checks the results and comm accounting match
// bit-for-bit. Also sanity-checks that the live run actually recorded
// something, so a silently detached sink can't trivially pass.
template <typename RunFn>
void ExpectTelemetryTransparent(RunFn run, bool expect_recording = true) {
  for (size_t limit : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE("parallelism limit " + std::to_string(limit));
    ScopedParallelismLimit parallelism(limit);
    ScopedSimdLevel simd_level(simd::Level::kPortable);

    obs::Telemetry live;
    CommStats comm_with, comm_without;
    const auto with = run(&live, &comm_with);
    const auto without = run(obs::Telemetry::Disabled(), &comm_without);
    ExpectBitIdentical(with, without);
    ExpectSameAccounting(comm_with, comm_without);
    if (expect_recording) {
      EXPECT_NE(live.SnapshotJson(), obs::Telemetry().SnapshotJson())
          << "live sink recorded nothing — instrumentation detached?";
    }
  }
}

TEST(TelemetryIdentityTest, AllProtocolBothEncodings) {
  auto cluster = MakeCluster(500, 15, 6,
                             workload::PartitionStrategy::kSkewedSplit, 31,
                             nullptr);
  for (auto encoding : {AllEncoding::kVectorized, AllEncoding::kKeyValue}) {
    ExpectTelemetryTransparent(
        [&](obs::Telemetry* telemetry, CommStats* comm) {
          AllTransmitProtocol all(encoding);
          all.set_telemetry(telemetry);
          return all.Run(*cluster, 5, comm).Value();
        });
  }
}

TEST(TelemetryIdentityTest, CsProtocolFaultFreeAndFaulty) {
  auto cluster = MakeCluster(800, 18, 8,
                             workload::PartitionStrategy::kSkewedSplit, 32,
                             nullptr);
  // Fault-free run (fused CompressAccumulate path).
  ExpectTelemetryTransparent([&](obs::Telemetry* telemetry, CommStats* comm) {
    CsProtocolOptions options;
    options.m = 220;
    options.seed = 77;
    options.iterations = 22;
    CsOutlierProtocol protocol(options);
    protocol.set_telemetry(telemetry);
    return protocol.Run(*cluster, 5, comm).Value();
  });
  // Faulty run (per-node path, retries and degraded aggregation live).
  ExpectTelemetryTransparent([&](obs::Telemetry* telemetry, CommStats* comm) {
    CsProtocolOptions options;
    options.m = 220;
    options.seed = 77;
    options.iterations = 22;
    options.faults.drop_rate = 0.3;
    options.faults.seed = 9;
    options.retry.max_retries = 3;
    CsOutlierProtocol protocol(options);
    protocol.set_telemetry(telemetry);
    return protocol.Run(*cluster, 5, comm).Value();
  });
}

TEST(TelemetryIdentityTest, AdaptiveCsProtocol) {
  auto cluster = MakeCluster(600, 12, 6,
                             workload::PartitionStrategy::kSkewedSplit, 33,
                             nullptr);
  ExpectTelemetryTransparent([&](obs::Telemetry* telemetry, CommStats* comm) {
    AdaptiveCsOptions options;
    options.initial_m = 32;
    options.max_m = 512;
    options.seed = 21;
    options.iterations = 16;
    AdaptiveCsProtocol protocol(options);
    protocol.set_telemetry(telemetry);
    return protocol.Run(*cluster, 5, comm).Value();
  });
}

TEST(TelemetryIdentityTest, TwoPhaseCsProtocol) {
  auto cluster = MakeCluster(600, 12, 6,
                             workload::PartitionStrategy::kSkewedSplit, 36,
                             nullptr);
  ExpectTelemetryTransparent([&](obs::Telemetry* telemetry, CommStats* comm) {
    AdaptiveCsOptions options;
    options.strategy = AdaptiveStrategy::kTwoPhase;
    options.locate_m = 180;
    options.seed = 23;
    options.iterations = 16;
    AdaptiveCsProtocol protocol(options);
    protocol.set_telemetry(telemetry);
    return protocol.Run(*cluster, 5, comm).Value();
  });
}

TEST(TelemetryIdentityTest, DistributedAmpProtocol) {
  auto cluster = MakeCluster(600, 12, 6,
                             workload::PartitionStrategy::kSkewedSplit, 37,
                             nullptr);
  ExpectTelemetryTransparent([&](obs::Telemetry* telemetry, CommStats* comm) {
    DistributedAmpOptions options;
    options.m = 220;
    options.seed = 25;
    DistributedAmpProtocol protocol(options);
    protocol.set_telemetry(telemetry);
    return protocol.Run(*cluster, 5, comm).Value();
  });
}

TEST(TelemetryIdentityTest, KPlusDeltaProtocol) {
  auto cluster = MakeCluster(500, 10, 5, workload::PartitionStrategy::kByKey,
                             34, nullptr);
  ExpectTelemetryTransparent([&](obs::Telemetry* telemetry, CommStats* comm) {
    KPlusDeltaOptions options;
    options.delta = 40;
    options.seed = 11;
    KPlusDeltaProtocol protocol(options);
    protocol.set_telemetry(telemetry);
    return protocol.Run(*cluster, 5, comm).Value();
  });
}

TEST(TelemetryIdentityTest, TopKBaselines) {
  // TA / TPUT require non-negative partial values: cap the divergence
  // below the mode and partition a positive global by key so every local
  // value stays positive.
  std::vector<double> global;
  auto cluster = MakeCluster(400, 12, 5, workload::PartitionStrategy::kByKey,
                             35, &global, /*max_divergence=*/4000.0);
  ExpectTelemetryTransparent([&](obs::Telemetry* telemetry, CommStats* comm) {
    return RunThresholdAlgorithmTopK(*cluster, 5, /*batch_size=*/8, comm,
                                     telemetry)
        .Value();
  });
  ExpectTelemetryTransparent([&](obs::Telemetry* telemetry, CommStats* comm) {
    return RunTputTopK(*cluster, 5, comm, telemetry).Value();
  });
}

}  // namespace
}  // namespace csod::dist
