#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/simd.h"
#include "dist/all_protocol.h"
#include "dist/cs_protocol.h"
#include "dist/kplusdelta_protocol.h"
#include "outlier/metrics.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

namespace csod::dist {
namespace {

// Restore the parallelism limit / SIMD dispatch level on scope exit, even
// when an assertion fails mid-test.
class ScopedParallelismLimit {
 public:
  explicit ScopedParallelismLimit(size_t limit) : previous_(GetParallelismLimit()) {
    SetParallelismLimit(limit);
  }
  ~ScopedParallelismLimit() { SetParallelismLimit(previous_); }

 private:
  size_t previous_;
};

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::Level level)
      : previous_(simd::SetLevelForTesting(level)) {}
  ~ScopedSimdLevel() { simd::SetLevelForTesting(previous_); }

 private:
  simd::Level previous_;
};

// Builds a cluster holding a majority-dominated global vector split with
// the given strategy.
struct TestSetup {
  std::vector<double> global;
  std::unique_ptr<Cluster> cluster;
  outlier::OutlierSet truth;
};

TestSetup MakeSetup(size_t n, size_t s, size_t num_nodes, size_t k,
                    workload::PartitionStrategy strategy, uint64_t seed) {
  workload::MajorityDominatedOptions gen;
  gen.n = n;
  gen.sparsity = s;
  gen.seed = seed;
  TestSetup setup;
  setup.global = workload::GenerateMajorityDominated(gen).Value();

  workload::PartitionOptions part;
  part.num_nodes = num_nodes;
  part.strategy = strategy;
  part.seed = seed + 1;
  if (strategy == workload::PartitionStrategy::kSkewedSplit) {
    part.cancellation_noise = 2000.0;
  }
  auto slices = workload::PartitionAdditive(setup.global, part).Value();

  setup.cluster = std::make_unique<Cluster>(n);
  for (auto& slice : slices) {
    EXPECT_TRUE(setup.cluster->AddNode(std::move(slice)).ok());
  }
  setup.truth = outlier::ExactKOutliers(setup.global, k);
  return setup;
}

TEST(AllProtocolTest, ExactAnswerAndVectorizedCost) {
  const size_t n = 400;
  const size_t k = 5;
  TestSetup setup = MakeSetup(n, 20, 4, k,
                              workload::PartitionStrategy::kSkewedSplit, 3);
  AllTransmitProtocol all(AllEncoding::kVectorized);
  CommStats comm;
  auto result = all.Run(*setup.cluster, k, &comm);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(setup.truth, result.Value()), 0.0);
  EXPECT_NEAR(outlier::ErrorOnValue(setup.truth, result.Value()), 0.0, 1e-12);
  // Cost = L * N * Sv.
  EXPECT_EQ(comm.bytes_total(), 4u * n * kValueBytes);
  EXPECT_EQ(comm.rounds(), 1u);
}

TEST(AllProtocolTest, KeyValueEncodingCost) {
  const size_t k = 5;
  TestSetup setup = MakeSetup(300, 10, 3, k,
                              workload::PartitionStrategy::kByKey, 7);
  AllTransmitProtocol all(AllEncoding::kKeyValue);
  CommStats comm;
  auto result = all.Run(*setup.cluster, k, &comm);
  ASSERT_TRUE(result.ok());
  uint64_t expected = 0;
  for (NodeId id : setup.cluster->NodeIds()) {
    expected += setup.cluster->Slice(id).Value()->nnz() * kKeyValueBytes;
  }
  EXPECT_EQ(comm.bytes_total(), expected);
}

TEST(AllProtocolTest, EmptyClusterRejected) {
  Cluster cluster(10);
  AllTransmitProtocol all;
  CommStats comm;
  EXPECT_FALSE(all.Run(cluster, 3, &comm).ok());
  EXPECT_FALSE(all.Run(cluster, 3, nullptr).ok());
}

TEST(CsProtocolTest, RecoversExactOutliersAtFractionOfAllCost) {
  const size_t n = 1000;
  const size_t s = 20;
  const size_t k = 5;
  TestSetup setup = MakeSetup(n, s, 8, k,
                              workload::PartitionStrategy::kSkewedSplit, 11);

  CsProtocolOptions options;
  options.m = 250;  // Generous for s=20.
  options.seed = 99;
  options.iterations = s + 4;
  CsOutlierProtocol protocol(options);
  CommStats comm;
  auto result = protocol.Run(*setup.cluster, k, &comm);
  ASSERT_TRUE(result.ok());

  EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(setup.truth, result.Value()), 0.0);
  EXPECT_LT(outlier::ErrorOnValue(setup.truth, result.Value()), 1e-6);
  EXPECT_NEAR(result.Value().mode, 5000.0, 1e-3);

  // Cost = L * M * SM, far below ALL's L * N * Sv.
  EXPECT_EQ(comm.bytes_total(), 8u * options.m * kMeasurementBytes);
  EXPECT_LT(comm.bytes_total(), 8u * n * kValueBytes / 2);
  EXPECT_EQ(comm.rounds(), 1u);
}

TEST(CsProtocolTest, InsensitiveToPartitioning) {
  // The same global vector partitioned three different ways must produce
  // identical global measurements, hence identical recoveries (Equation 1).
  const size_t n = 600;
  const size_t k = 5;
  std::vector<outlier::OutlierSet> answers;
  for (auto strategy : {workload::PartitionStrategy::kUniformSplit,
                        workload::PartitionStrategy::kSkewedSplit,
                        workload::PartitionStrategy::kByKey}) {
    TestSetup setup = MakeSetup(n, 15, 6, k, strategy, 21);
    CsProtocolOptions options;
    options.m = 200;
    options.seed = 5;
    options.iterations = 20;
    CsOutlierProtocol protocol(options);
    CommStats comm;
    auto result = protocol.Run(*setup.cluster, k, &comm);
    ASSERT_TRUE(result.ok());
    answers.push_back(result.MoveValue());
  }
  ASSERT_EQ(answers.size(), 3u);
  for (size_t i = 1; i < answers.size(); ++i) {
    ASSERT_EQ(answers[i].outliers.size(), answers[0].outliers.size());
    for (size_t j = 0; j < answers[0].outliers.size(); ++j) {
      EXPECT_EQ(answers[i].outliers[j].key_index,
                answers[0].outliers[j].key_index);
    }
  }
}

TEST(CsProtocolTest, InvalidConfigRejected) {
  Cluster cluster(10);
  ASSERT_TRUE(cluster.AddNode({}).ok());
  CsProtocolOptions options;  // m == 0.
  CsOutlierProtocol protocol(options);
  CommStats comm;
  EXPECT_FALSE(protocol.Run(cluster, 3, &comm).ok());
  options.m = 5;
  CsOutlierProtocol protocol2(options);
  EXPECT_FALSE(protocol2.Run(cluster, 3, nullptr).ok());
  Cluster empty(10);
  EXPECT_FALSE(protocol2.Run(empty, 3, &comm).ok());
}

TEST(KPlusDeltaTest, GoodOnByKeyPartitionsPoorOnSkewed) {
  // The paper: K+δ works when values are uniformly distributed across
  // nodes but fails when the partitioning is skewed. Outlier divergences
  // are separated by more than any possible mode-estimate error so the
  // easy case is deterministic.
  const size_t n = 1000;
  const size_t k = 5;
  std::vector<double> global(n, 5000.0);
  for (size_t i = 0; i < 10; ++i) {
    const double sign = (i % 2 == 0) ? 1.0 : -1.0;
    global[i * 97 + 3] = 5000.0 + sign * (3000.0 + 1500.0 * i);
  }
  const outlier::OutlierSet truth = outlier::ExactKOutliers(global, k);

  KPlusDeltaOptions options;
  options.delta = 45;
  options.seed = 7;
  KPlusDeltaProtocol protocol(options);

  workload::PartitionOptions easy_part;
  easy_part.num_nodes = 8;
  easy_part.strategy = workload::PartitionStrategy::kByKey;
  easy_part.seed = 31;
  Cluster easy_cluster(n);
  auto easy_slices = workload::PartitionAdditive(global, easy_part).MoveValue();
  for (auto& slice : easy_slices) {
    ASSERT_TRUE(easy_cluster.AddNode(std::move(slice)).ok());
  }
  CommStats comm_easy;
  auto easy_result = protocol.Run(easy_cluster, k, &comm_easy);
  ASSERT_TRUE(easy_result.ok());
  const double easy_ek = outlier::ErrorOnKey(truth, easy_result.Value());

  workload::PartitionOptions hard_part;
  hard_part.num_nodes = 8;
  hard_part.strategy = workload::PartitionStrategy::kSkewedSplit;
  hard_part.cancellation_noise = 8000.0;
  hard_part.seed = 31;
  Cluster hard_cluster(n);
  auto hard_slices = workload::PartitionAdditive(global, hard_part).MoveValue();
  for (auto& slice : hard_slices) {
    ASSERT_TRUE(hard_cluster.AddNode(std::move(slice)).ok());
  }
  CommStats comm_hard;
  auto hard_result = protocol.Run(hard_cluster, k, &comm_hard);
  ASSERT_TRUE(hard_result.ok());
  const double hard_ek = outlier::ErrorOnKey(truth, hard_result.Value());

  // On by-key partitions every local value is the global value: with
  // budget >= s the answer is exact.
  EXPECT_EQ(easy_ek, 0.0);
  // Skewed splits break the local ranking.
  EXPECT_GE(hard_ek, easy_ek);
}

TEST(KPlusDeltaTest, CommunicationBudgetRespected) {
  const size_t k = 5;
  const size_t delta = 15;
  TestSetup setup = MakeSetup(500, 10, 4, k,
                              workload::PartitionStrategy::kByKey, 13);
  KPlusDeltaOptions options;
  options.delta = delta;
  KPlusDeltaProtocol protocol(options);
  CommStats comm;
  ASSERT_TRUE(protocol.Run(*setup.cluster, k, &comm).ok());
  // Per paper: <= L * (k + delta) tuples of St bytes, plus the L-value
  // round-2 broadcast.
  const uint64_t budget_bytes =
      4u * (k + delta) * kKeyValueBytes + 4u * kValueBytes;
  EXPECT_LE(comm.bytes_total(), budget_bytes);
  EXPECT_EQ(comm.rounds(), 3u);
}

TEST(KPlusDeltaTest, EmptyClusterRejected) {
  Cluster cluster(10);
  KPlusDeltaProtocol protocol(KPlusDeltaOptions{});
  CommStats comm;
  EXPECT_FALSE(protocol.Run(cluster, 3, &comm).ok());
}

TEST(CsProtocolTest, DeterministicAcrossRuns) {
  // Same cluster + same seed => bitwise-identical detection (required for
  // reproducible production analytics).
  TestSetup setup = MakeSetup(500, 10, 4, 5,
                              workload::PartitionStrategy::kSkewedSplit, 41);
  CsProtocolOptions options;
  options.m = 150;
  options.seed = 7;
  options.iterations = 14;

  CsOutlierProtocol protocol_a(options);
  CsOutlierProtocol protocol_b(options);
  CommStats comm_a, comm_b;
  auto a = protocol_a.Run(*setup.cluster, 5, &comm_a).MoveValue();
  auto b = protocol_b.Run(*setup.cluster, 5, &comm_b).MoveValue();

  EXPECT_EQ(a.mode, b.mode);
  ASSERT_EQ(a.outliers.size(), b.outliers.size());
  for (size_t i = 0; i < a.outliers.size(); ++i) {
    EXPECT_EQ(a.outliers[i].key_index, b.outliers[i].key_index);
    EXPECT_EQ(a.outliers[i].value, b.outliers[i].value);
  }
  EXPECT_EQ(comm_a.bytes_total(), comm_b.bytes_total());
}

TEST(CsProtocolTest, BitIdenticalAcrossLimitsAndSimdLevels) {
  // The fault-free path now runs through the batched SIMD-dispatched
  // sketching kernel; the detection result must not depend on the thread
  // limit or on which ISA path the dispatcher picked.
  TestSetup setup = MakeSetup(500, 10, 4, 5,
                              workload::PartitionStrategy::kSkewedSplit, 41);
  CsProtocolOptions options;
  options.m = 150;
  options.seed = 7;
  options.iterations = 14;

  auto run = [&] {
    CsOutlierProtocol protocol(options);
    CommStats comm;
    return protocol.Run(*setup.cluster, 5, &comm).MoveValue();
  };

  outlier::OutlierSet reference;
  {
    ScopedParallelismLimit serial(1);
    ScopedSimdLevel portable(simd::Level::kPortable);
    reference = run();
  }
  for (size_t limit : {size_t{1}, size_t{2}, size_t{8}}) {
    for (simd::Level level : {simd::Level::kPortable, simd::Level::kAvx2}) {
      ScopedParallelismLimit scoped_limit(limit);
      ScopedSimdLevel scoped_level(level);
      const outlier::OutlierSet got = run();
      EXPECT_EQ(got.mode, reference.mode)
          << "limit=" << limit << " level=" << simd::LevelName(level);
      ASSERT_EQ(got.outliers.size(), reference.outliers.size());
      for (size_t i = 0; i < got.outliers.size(); ++i) {
        EXPECT_EQ(got.outliers[i].key_index, reference.outliers[i].key_index);
        EXPECT_EQ(got.outliers[i].value, reference.outliers[i].value);
      }
    }
  }
}

TEST(CsProtocolTest, LastRecoveryExposed) {
  TestSetup setup = MakeSetup(300, 8, 3, 5,
                              workload::PartitionStrategy::kUniformSplit, 43);
  CsProtocolOptions options;
  options.m = 120;
  options.iterations = 12;
  CsOutlierProtocol protocol(options);
  CommStats comm;
  ASSERT_TRUE(protocol.Run(*setup.cluster, 5, &comm).ok());
  EXPECT_TRUE(protocol.last_recovery().bias_selected);
  EXPECT_GT(protocol.last_recovery().iterations, 0u);
  EXPECT_NEAR(protocol.last_recovery().mode, 5000.0, 1.0);
}

TEST(ProtocolNamesTest, Names) {
  EXPECT_EQ(AllTransmitProtocol(AllEncoding::kVectorized).name(),
            "ALL(vector)");
  EXPECT_EQ(AllTransmitProtocol(AllEncoding::kKeyValue).name(), "ALL(kv)");
  EXPECT_EQ(CsOutlierProtocol(CsProtocolOptions{}).name(), "BOMP");
  EXPECT_EQ(KPlusDeltaProtocol(KPlusDeltaOptions{}).name(), "K+delta");
}

}  // namespace
}  // namespace csod::dist
