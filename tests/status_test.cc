#include "common/status.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace csod {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("oor").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("fp").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("nf").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("ae").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Internal("in").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("un").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::NotFound("missing key").message(), "missing key");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::InvalidArgument("negative size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: negative size");
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.Value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("x"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r.ValueOr("fallback"), "hello");
}

TEST(ResultTest, MoveValueTransfers) {
  Result<std::string> r(std::string("payload"));
  std::string moved = r.MoveValue();
  EXPECT_EQ(moved, "payload");
}

Result<std::vector<int>> ProducesVector() {
  return std::vector<int>{1, 2, 3};
}

TEST(ResultTest, MoveValueOfTemporarySafeInRangeFor) {
  // MoveValue returns by value, so iterating the result of a temporary
  // Result is lifetime-safe (regression test for a dangling-reference
  // pattern: `for (auto& v : F().Value())` dangles, MoveValue must not).
  int sum = 0;
  for (int v : ProducesVector().MoveValue()) sum += v;
  EXPECT_EQ(sum, 6);
}

Status FailingOperation() { return Status::Internal("boom"); }

Status PropagatesWithMacro() {
  CSOD_RETURN_NOT_OK(FailingOperation());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  Status s = PropagatesWithMacro();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

Result<int> ProducesValue() { return 7; }
Result<int> ProducesError() { return Status::OutOfRange("bad index"); }

Result<int> UsesAssignMacro(bool fail) {
  CSOD_ASSIGN_OR_RETURN(int v, fail ? ProducesError() : ProducesValue());
  return v + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = UsesAssignMacro(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.Value(), 8);

  Result<int> err = UsesAssignMacro(true);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace csod
