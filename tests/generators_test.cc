#include "workload/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/grid.h"
#include "outlier/outlier.h"

namespace csod::workload {
namespace {

TEST(MajorityDominatedTest, StructureMatchesOptions) {
  MajorityDominatedOptions options;
  options.n = 1000;
  options.sparsity = 50;
  options.mode = 5000.0;
  options.min_divergence = 100.0;
  options.max_divergence = 10000.0;
  options.seed = 3;
  auto result = GenerateMajorityDominated(options);
  ASSERT_TRUE(result.ok());
  const auto& x = result.Value();
  ASSERT_EQ(x.size(), 1000u);

  size_t at_mode = 0;
  for (double v : x) {
    if (v == 5000.0) {
      ++at_mode;
    } else {
      const double div = std::fabs(v - 5000.0);
      EXPECT_GE(div, 100.0 - 1e-3);
      EXPECT_LE(div, 10000.0 + 1e-3);
    }
  }
  EXPECT_EQ(at_mode, 1000u - 50u);
  EXPECT_TRUE(outlier::IsMajorityDominated(x));
  EXPECT_EQ(outlier::ComputeMode(x), 5000.0);
}

TEST(MajorityDominatedTest, Deterministic) {
  MajorityDominatedOptions options;
  options.seed = 42;
  auto a = GenerateMajorityDominated(options);
  auto b = GenerateMajorityDominated(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.Value(), b.Value());
}

TEST(MajorityDominatedTest, InvalidOptionsRejected) {
  MajorityDominatedOptions options;
  options.n = 0;
  EXPECT_FALSE(GenerateMajorityDominated(options).ok());
  options.n = 10;
  options.sparsity = 10;
  EXPECT_FALSE(GenerateMajorityDominated(options).ok());
  options.sparsity = 2;
  options.min_divergence = -1.0;
  EXPECT_FALSE(GenerateMajorityDominated(options).ok());
  options.min_divergence = 10.0;
  options.max_divergence = 5.0;
  EXPECT_FALSE(GenerateMajorityDominated(options).ok());
}

TEST(MajorityDominatedTest, ValuesOnGrid) {
  MajorityDominatedOptions options;
  options.seed = 9;
  auto result = GenerateMajorityDominated(options);
  ASSERT_TRUE(result.ok());
  for (double v : result.Value()) {
    EXPECT_EQ(v, QuantizeToGrid(v));
  }
}

TEST(PowerLawTest, HeavyTailProperties) {
  PowerLawOptions options;
  options.n = 20000;
  options.alpha = 0.9;
  options.scale = 1.0;
  options.seed = 7;
  auto result = GeneratePowerLaw(options);
  ASSERT_TRUE(result.ok());
  const auto& x = result.Value();

  // All values >= scale (Pareto support), heavy tail present.
  double max_v = 0.0;
  size_t big = 0;
  for (double v : x) {
    EXPECT_GE(v, 1.0 - 1e-4);
    max_v = std::max(max_v, v);
    if (v > 100.0) ++big;
  }
  // With alpha=0.9, P(X > 100) = 100^-0.9 ≈ 1.6%: expect a real tail.
  EXPECT_GT(big, 100u);
  EXPECT_GT(max_v, 1000.0);
}

TEST(PowerLawTest, SmallerAlphaHeavierTail) {
  PowerLawOptions heavy;
  heavy.n = 20000;
  heavy.alpha = 0.9;
  heavy.seed = 11;
  PowerLawOptions light;
  light.n = 20000;
  light.alpha = 3.0;
  light.seed = 11;
  auto hx = GeneratePowerLaw(heavy);
  auto lx = GeneratePowerLaw(light);
  ASSERT_TRUE(hx.ok());
  ASSERT_TRUE(lx.ok());
  const double hmax = *std::max_element(hx.Value().begin(), hx.Value().end());
  const double lmax = *std::max_element(lx.Value().begin(), lx.Value().end());
  EXPECT_GT(hmax, lmax);
}

TEST(PowerLawTest, InvalidOptionsRejected) {
  PowerLawOptions options;
  options.n = 0;
  EXPECT_FALSE(GeneratePowerLaw(options).ok());
  options.n = 10;
  options.alpha = 0.0;
  EXPECT_FALSE(GeneratePowerLaw(options).ok());
  options.alpha = 1.0;
  options.scale = 0.0;
  EXPECT_FALSE(GeneratePowerLaw(options).ok());
}

TEST(ClickLogTest, CalibrationsMatchPaper) {
  EXPECT_EQ(CalibrationFor(ClickScoreType::kCoreSearch).n, 10400u);
  EXPECT_EQ(CalibrationFor(ClickScoreType::kCoreSearch).sparsity, 300u);
  EXPECT_EQ(CalibrationFor(ClickScoreType::kAds).n, 9000u);
  EXPECT_EQ(CalibrationFor(ClickScoreType::kAds).sparsity, 650u);
  EXPECT_EQ(CalibrationFor(ClickScoreType::kAnswer).n, 10000u);
  EXPECT_EQ(CalibrationFor(ClickScoreType::kAnswer).sparsity, 610u);
}

TEST(ClickLogTest, GlobalStructure) {
  ClickLogOptions options;
  options.score_type = ClickScoreType::kCoreSearch;
  options.n_override = 2000;
  options.sparsity_override = 60;
  options.seed = 5;
  auto result = GenerateClickLog(options);
  ASSERT_TRUE(result.ok());
  const ClickLogData& data = result.Value();
  ASSERT_EQ(data.global.size(), 2000u);
  EXPECT_EQ(data.outlier_indices.size(), 60u);
  EXPECT_EQ(data.sparsity, 60u);

  // Outliers diverge strongly; non-outliers sit within the jitter band.
  std::vector<bool> is_outlier(2000, false);
  for (size_t idx : data.outlier_indices) is_outlier[idx] = true;
  for (size_t i = 0; i < 2000; ++i) {
    const double div = std::fabs(data.global[i] - data.mode);
    if (is_outlier[i]) {
      EXPECT_GE(div, options.min_divergence - 1e-3) << "index " << i;
    } else {
      EXPECT_LE(div, options.jitter + 1e-3) << "index " << i;
    }
  }
}

TEST(ClickLogTest, Deterministic) {
  ClickLogOptions options;
  options.n_override = 500;
  options.sparsity_override = 20;
  options.seed = 99;
  auto a = GenerateClickLog(options);
  auto b = GenerateClickLog(options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.Value().global, b.Value().global);
  EXPECT_EQ(a.Value().outlier_indices, b.Value().outlier_indices);
}

TEST(ClickLogTest, HeavyTailedDivergences) {
  // With Pareto alpha < 1 the top outlier dwarfs the median outlier.
  ClickLogOptions options;
  options.n_override = 5000;
  options.sparsity_override = 200;
  options.divergence_alpha = 0.8;
  options.seed = 3;
  auto data = GenerateClickLog(options).MoveValue();
  std::vector<double> divergences;
  for (size_t idx : data.outlier_indices) {
    divergences.push_back(std::fabs(data.global[idx] - data.mode));
  }
  std::sort(divergences.begin(), divergences.end());
  EXPECT_GT(divergences.back(), 10.0 * divergences[divergences.size() / 2]);
}

TEST(ClickLogTest, InvalidDivergenceAlphaRejected) {
  ClickLogOptions options;
  options.n_override = 100;
  options.sparsity_override = 5;
  options.divergence_alpha = 0.0;
  EXPECT_FALSE(GenerateClickLog(options).ok());
}

TEST(ClickLogTest, SparsityMustBeBelowN) {
  ClickLogOptions options;
  options.n_override = 100;
  options.sparsity_override = 100;
  EXPECT_FALSE(GenerateClickLog(options).ok());
  options.sparsity_override = 0;  // falls back to calibration 300 > 100
  EXPECT_FALSE(GenerateClickLog(options).ok());
}

TEST(ClickLogTest, ScoreTypeNames) {
  EXPECT_STREQ(ClickScoreTypeName(ClickScoreType::kCoreSearch),
               "core-search");
  EXPECT_STREQ(ClickScoreTypeName(ClickScoreType::kAds), "ads");
  EXPECT_STREQ(ClickScoreTypeName(ClickScoreType::kAnswer), "answer");
}

TEST(ClickLogTest, KeyStringsAreStructuredAndDistinct) {
  const std::string k0 = ClickLogKeyForIndex(0);
  const std::string k1 = ClickLogKeyForIndex(1);
  EXPECT_NE(k0, k1);
  // date|market|vertical|url|dc — four separators.
  EXPECT_EQ(std::count(k0.begin(), k0.end(), '|'), 4);
}

}  // namespace
}  // namespace csod::workload
