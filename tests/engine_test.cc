#include "mapreduce/engine.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "obs/telemetry.h"

namespace csod::mr {
namespace {

// A word-count-style job: inputs are ints, key = value % 3, reduce sums.
Job<int, int, int, std::pair<int, int>> ModuloCountJob() {
  Job<int, int, int, std::pair<int, int>> job;
  job.map_fn = [](const std::vector<int>& split, Emitter<int, int>* out) {
    for (int v : split) out->Emit(v % 3, 1);
  };
  job.reduce_fn = [](const int& key, Span<int> values,
                     std::vector<std::pair<int, int>>* out) {
    int total = 0;
    for (int v : values) total += v;
    out->emplace_back(key, total);
  };
  // Exercises the deferred `tuple_bytes` callback path (the fixed-size
  // fast path is covered by the determinism suite below).
  job.tuple_bytes = [](const int&, const int&) { return uint64_t{12}; };
  job.input_record_bytes = 4;
  return job;
}

TEST(EngineTest, CountsCorrectly) {
  auto job = ModuloCountJob();
  const std::vector<std::vector<int>> splits = {{0, 1, 2, 3}, {4, 5, 6}};
  auto result = RunJob(splits, job);
  ASSERT_TRUE(result.ok());
  // 0,3,6 -> key 0 (3); 1,4 -> key 1 (2); 2,5 -> key 2 (2).
  std::map<int, int> counts;
  for (auto& [k, c] : result.Value().output) counts[k] = c;
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 2);
}

TEST(EngineTest, StatsAccounting) {
  auto job = ModuloCountJob();
  const std::vector<std::vector<int>> splits = {{0, 1, 2, 3}, {4, 5, 6}};
  auto result = RunJob(splits, job);
  ASSERT_TRUE(result.ok());
  const JobStats& stats = result.Value().stats;
  EXPECT_EQ(stats.num_map_tasks, 2u);
  EXPECT_EQ(stats.num_reduce_tasks, 1u);
  EXPECT_EQ(stats.input_bytes, 7u * 4);
  EXPECT_EQ(stats.shuffle_tuples, 7u);  // One pair per record.
  EXPECT_EQ(stats.shuffle_bytes, 7u * 12);
  // No combiner: pre-combine volume equals shipped volume.
  EXPECT_EQ(stats.pre_combine_shuffle_tuples, stats.shuffle_tuples);
  EXPECT_EQ(stats.pre_combine_shuffle_bytes, stats.shuffle_bytes);
  EXPECT_EQ(stats.output_records, 3u);
  EXPECT_GE(stats.map_compute_sec, 0.0);
  EXPECT_GE(stats.reduce_compute_sec, 0.0);
  EXPECT_GE(stats.shuffle_build_sec, 0.0);
  // Per-task max never exceeds the per-task sum.
  EXPECT_LE(stats.map_compute_max_sec, stats.map_compute_sec + 1e-12);
  EXPECT_LE(stats.reduce_compute_max_sec, stats.reduce_compute_sec + 1e-12);
  EXPECT_GE(stats.map_wall_sec, 0.0);
  EXPECT_GE(stats.shuffle_wall_sec, 0.0);
  EXPECT_GE(stats.reduce_wall_sec, 0.0);
}

TEST(EngineTest, TaskReduceSeesWholePartition) {
  Job<int, int, int, int> job;
  job.map_fn = [](const std::vector<int>& split, Emitter<int, int>* out) {
    for (int v : split) out->Emit(v, v);
  };
  job.task_reduce_fn = [](ReduceGroups<int, int>& groups,
                          std::vector<int>* out) {
    out->push_back(static_cast<int>(groups.size()));
  };
  job.fixed_tuple_bytes = 8;
  auto result = RunJob({{1, 2, 3}, {3, 4}}, job);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.Value().output.size(), 1u);
  EXPECT_EQ(result.Value().output[0], 4);  // Keys 1..4.
}

TEST(EngineTest, MultipleReduceTasksPartitionKeys) {
  Job<int, int, int, std::pair<int, int>> job = ModuloCountJob();
  job.num_reduce_tasks = 3;
  job.partition_fn = [](const int& key) { return static_cast<size_t>(key); };
  const std::vector<std::vector<int>> splits = {{0, 1, 2, 3, 4, 5}};
  auto result = RunJob(splits, job);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.Value().stats.num_reduce_tasks, 3u);
  EXPECT_EQ(result.Value().output.size(), 3u);
}

TEST(EngineTest, ConfigValidation) {
  Job<int, int, int, int> job;
  const std::vector<std::vector<int>> one_split = {{1}};
  // Missing everything.
  EXPECT_FALSE(RunJob(one_split, job).ok());
  job.map_fn = [](const std::vector<int>&, Emitter<int, int>*) {};
  EXPECT_FALSE(RunJob(one_split, job).ok());  // no tuple size at all
  job.tuple_bytes = [](const int&, const int&) { return uint64_t{1}; };
  job.fixed_tuple_bytes = 4;
  EXPECT_FALSE(RunJob(one_split, job).ok());  // both tuple sizes set
  job.fixed_tuple_bytes = 0;
  EXPECT_FALSE(RunJob(one_split, job).ok());  // no reducer
  job.reduce_fn = [](const int&, Span<int>, std::vector<int>*) {};
  job.task_reduce_fn = [](ReduceGroups<int, int>&, std::vector<int>*) {};
  EXPECT_FALSE(RunJob(one_split, job).ok());  // both reducers set
  job.task_reduce_fn = nullptr;
  job.num_reduce_tasks = 0;
  EXPECT_FALSE(RunJob(one_split, job).ok());
  job.num_reduce_tasks = 1;
  EXPECT_TRUE(RunJob(one_split, job).ok());
}

TEST(EngineTest, EmptySplitsProduceNothing) {
  auto job = ModuloCountJob();
  auto result = RunJob(std::vector<std::vector<int>>{}, job);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.Value().output.empty());
  EXPECT_EQ(result.Value().stats.num_map_tasks, 0u);
}

// --- Default partitioner: the fixed splitmix64 mixer. ---

TEST(DefaultPartitionTest, PinnedUint64Assignments) {
  // SplitMix64 of the key value, pinned byte-for-byte: a platform or
  // standard-library change that reassigned reduce tasks (std::hash is
  // identity for integers on libstdc++, something else elsewhere) fails
  // here. Values computed from the SplitMix64 reference constants.
  static_assert(sizeof(size_t) == 8, "partition pinning assumes 64-bit");
  EXPECT_EQ(DefaultPartition<uint64_t>(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(DefaultPartition<uint64_t>(1), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(DefaultPartition<uint64_t>(2), 0x975835de1c9756ceULL);
  EXPECT_EQ(DefaultPartition<uint64_t>(7), 0x63cbe1e459320dd7ULL);
  EXPECT_EQ(DefaultPartition<uint64_t>(42), 0xbdd732262feb6e95ULL);
  EXPECT_EQ(DefaultPartition<uint64_t>(1000), 0x3c1eba8b4dccc148ULL);
  EXPECT_EQ(DefaultPartition<uint64_t>(123456789), 0x223c74d93deb7679ULL);
  EXPECT_EQ(DefaultPartition<uint64_t>(0xdeadbeefULL),
            0x4adfb90f68c9eb9bULL);
  EXPECT_EQ(DefaultPartition<uint64_t>(uint64_t{1} << 63),
            0x481ec0a212a9f3dbULL);
  EXPECT_EQ(DefaultPartition<uint64_t>(~uint64_t{0}), 0xe4d971771b652c20ULL);
  // The reduce-task assignments the engine derives from them.
  EXPECT_EQ(DefaultPartition<uint64_t>(0) % 8, 7u);
  EXPECT_EQ(DefaultPartition<uint64_t>(1) % 8, 1u);
  EXPECT_EQ(DefaultPartition<uint64_t>(2) % 8, 6u);
  EXPECT_EQ(DefaultPartition<uint64_t>(1000) % 3, 1u);
  EXPECT_EQ(DefaultPartition<uint64_t>(123456789) % 3, 2u);
  // Narrow integral key types agree with their widened value.
  EXPECT_EQ(DefaultPartition<uint32_t>(42), DefaultPartition<uint64_t>(42));
  EXPECT_EQ(DefaultPartition<int>(1000), DefaultPartition<uint64_t>(1000));
}

TEST(DefaultPartitionTest, UnskewsStructuredIntegerKeys) {
  // Keys that are all multiples of 8 under 8 reduce tasks: identity
  // hashing sends every key to task 0; the mixer uses every task.
  std::array<size_t, 8> counts{};
  for (uint64_t i = 0; i < 64; ++i) {
    counts[DefaultPartition<uint64_t>(8 * i) % 8]++;
  }
  size_t used = 0;
  for (size_t c : counts) {
    if (c > 0) ++used;
    EXPECT_LE(c, 24u) << "one reduce task absorbed most structured keys";
  }
  EXPECT_GE(used, 6u);
}

TEST(EngineTest, DefaultPartitionerDrivesTaskAssignment) {
  // Engine-level pin: with structured uint64 keys and 8 reduce tasks the
  // output order (tasks in order, keys sorted within a task) must match
  // the assignment DefaultPartition predicts.
  Job<uint64_t, uint64_t, int, uint64_t> job;
  job.map_fn = [](const std::vector<uint64_t>& split,
                  Emitter<uint64_t, int>* out) {
    for (uint64_t v : split) out->Emit(v, 1);
  };
  job.reduce_fn = [](const uint64_t& key, Span<int>,
                     std::vector<uint64_t>* out) { out->push_back(key); };
  job.fixed_tuple_bytes = 12;
  job.num_reduce_tasks = 8;
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 32; ++i) keys.push_back(8 * i);
  auto result = RunJob({keys}, job);
  ASSERT_TRUE(result.ok());

  std::vector<uint64_t> expected;
  for (size_t task = 0; task < 8; ++task) {
    std::vector<uint64_t> in_task;
    for (uint64_t key : keys) {
      if (DefaultPartition<uint64_t>(key) % 8 == task) in_task.push_back(key);
    }
    std::sort(in_task.begin(), in_task.end());
    expected.insert(expected.end(), in_task.begin(), in_task.end());
  }
  EXPECT_EQ(result.Value().output, expected);
}

TEST(EngineTest, DeterministicReduceOrder) {
  // Keys inside a reduce task are processed in sorted order.
  Job<int, int, int, int> job;
  job.map_fn = [](const std::vector<int>& split, Emitter<int, int>* out) {
    for (int v : split) out->Emit(v, v);
  };
  job.reduce_fn = [](const int& key, Span<int>, std::vector<int>* out) {
    out->push_back(key);
  };
  job.fixed_tuple_bytes = 8;
  auto result = RunJob({{5, 3, 9, 1}}, job);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.Value().output, (std::vector<int>{1, 3, 5, 9}));
}

// --- Determinism suite: the parallel executor's output must be invariant
// across reduce-task counts, partitioners, thread limits, and combiner
// on/off (exactly — the values below are integer-valued doubles, so even
// float accumulation is order-exact). ---

// Sum-per-key job over uint64 keys with structured collisions.
Job<uint64_t, uint64_t, double, std::pair<uint64_t, double>> SumJob() {
  Job<uint64_t, uint64_t, double, std::pair<uint64_t, double>> job;
  job.map_fn = [](const std::vector<uint64_t>& split,
                  Emitter<uint64_t, double>* out) {
    for (uint64_t v : split) {
      out->Emit(v % 17, static_cast<double>(v % 7 + 1));
    }
  };
  job.reduce_fn = [](const uint64_t& key, Span<double> values,
                     std::vector<std::pair<uint64_t, double>>* out) {
    double sum = 0.0;
    for (double v : values) sum += v;
    out->emplace_back(key, sum);
  };
  job.fixed_tuple_bytes = 12;
  return job;
}

std::vector<std::vector<uint64_t>> SumJobSplits() {
  std::vector<std::vector<uint64_t>> splits(6);
  for (uint64_t v = 0; v < 600; ++v) splits[v % 6].push_back(v * 37 + 11);
  return splits;
}

std::vector<std::pair<uint64_t, double>> SortedByKey(
    std::vector<std::pair<uint64_t, double>> output) {
  std::sort(output.begin(), output.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return output;
}

TEST(EngineDeterminismTest, OutputInvariantAcrossReduceTaskCounts) {
  const auto splits = SumJobSplits();
  auto job = SumJob();
  job.num_reduce_tasks = 1;
  auto reference = RunJob(splits, job);
  ASSERT_TRUE(reference.ok());
  for (size_t tasks : {3u, 8u}) {
    job.num_reduce_tasks = tasks;
    auto result = RunJob(splits, job);
    ASSERT_TRUE(result.ok());
    // Same keys, bit-identical sums — only the concatenation order moves.
    EXPECT_EQ(SortedByKey(result.Value().output),
              SortedByKey(reference.Value().output))
        << "num_reduce_tasks = " << tasks;
    EXPECT_EQ(result.Value().stats.shuffle_bytes,
              reference.Value().stats.shuffle_bytes);
  }
}

TEST(EngineDeterminismTest, CustomVsDefaultPartitionerSameAnswer) {
  const auto splits = SumJobSplits();
  auto job = SumJob();
  job.num_reduce_tasks = 5;
  auto with_default = RunJob(splits, job);
  ASSERT_TRUE(with_default.ok());
  job.partition_fn = [](const uint64_t& key) {
    return static_cast<size_t>(key % 7);
  };
  auto with_custom = RunJob(splits, job);
  ASSERT_TRUE(with_custom.ok());
  EXPECT_EQ(SortedByKey(with_custom.Value().output),
            SortedByKey(with_default.Value().output));
}

TEST(EngineDeterminismTest, BitIdenticalAcrossThreadLimits) {
  const auto splits = SumJobSplits();
  auto job = SumJob();
  job.num_reduce_tasks = 4;
  const size_t previous_limit = GetParallelismLimit();
  SetParallelismLimit(1);
  auto sequential = RunJob(splits, job);
  ASSERT_TRUE(sequential.ok());
  for (size_t limit : {2u, 8u}) {
    SetParallelismLimit(limit);
    auto parallel = RunJob(splits, job);
    ASSERT_TRUE(parallel.ok());
    // Raw output vector — order included — must be byte-identical.
    EXPECT_EQ(parallel.Value().output, sequential.Value().output)
        << "limit = " << limit;
    EXPECT_EQ(parallel.Value().stats.shuffle_bytes,
              sequential.Value().stats.shuffle_bytes);
    EXPECT_EQ(parallel.Value().stats.shuffle_tuples,
              sequential.Value().stats.shuffle_tuples);
  }
  SetParallelismLimit(previous_limit);
}

TEST(EngineDeterminismTest, CombinerOnVsOffValueEquality) {
  const auto splits = SumJobSplits();
  auto without = SumJob();
  without.num_reduce_tasks = 3;
  auto raw = RunJob(splits, without);
  ASSERT_TRUE(raw.ok());

  auto with = SumJob();
  with.num_reduce_tasks = 3;
  with.combine_fn = [](const uint64_t&, Span<double> values) {
    double sum = 0.0;
    for (double v : values) sum += v;
    return sum;
  };
  auto combined = RunJob(splits, with);
  ASSERT_TRUE(combined.ok());

  // Integer-valued scores: combining per map task first changes the
  // grouping of the sum but not its value.
  EXPECT_EQ(SortedByKey(combined.Value().output),
            SortedByKey(raw.Value().output));

  // Byte accounting: pre-combine volume matches the uncombined job; the
  // wire carries at most one tuple per (map task, key) after combining.
  const JobStats& c = combined.Value().stats;
  const JobStats& r = raw.Value().stats;
  EXPECT_EQ(c.pre_combine_shuffle_tuples, r.shuffle_tuples);
  EXPECT_EQ(c.pre_combine_shuffle_bytes, r.shuffle_bytes);
  EXPECT_LT(c.shuffle_tuples, c.pre_combine_shuffle_tuples);
  EXPECT_LT(c.shuffle_bytes, c.pre_combine_shuffle_bytes);
  EXPECT_LE(c.shuffle_tuples, uint64_t{6} * 17);  // tasks * distinct keys
}

TEST(EngineTest, TelemetrySpansAndCounters) {
  obs::Telemetry telemetry;
  auto job = ModuloCountJob();
  job.telemetry = &telemetry;
  auto result = RunJob({{0, 1, 2, 3}, {4, 5, 6}}, job);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(telemetry.span("mr.map").count, 1u);
  EXPECT_EQ(telemetry.span("mr.shuffle").count, 1u);
  EXPECT_EQ(telemetry.span("mr.reduce").count, 1u);
  EXPECT_EQ(telemetry.counter("mr.map_tasks"), 2u);
  EXPECT_EQ(telemetry.counter("mr.reduce_tasks"), 1u);
  EXPECT_EQ(telemetry.counter("mr.shuffle_tuples"), 7u);
  EXPECT_EQ(telemetry.counter("mr.shuffle_bytes"), 7u * 12);
  EXPECT_EQ(telemetry.counter("mr.shuffle_tuples_precombine"), 7u);
  EXPECT_EQ(telemetry.counter("mr.output_records"), 3u);
  // Per-task shuffle timing histograms: one build sample per map task,
  // one merge sample per reduce task.
  EXPECT_EQ(telemetry.value("mr.shuffle.build_ms").count, 2u);
  EXPECT_EQ(telemetry.value("mr.shuffle.merge_ms").count, 1u);
  EXPECT_GE(telemetry.value("mr.shuffle.build_ms").min, 0.0);
}

}  // namespace
}  // namespace csod::mr
