#include "mapreduce/engine.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace csod::mr {
namespace {

// A word-count-style job: inputs are ints, key = value % 3, reduce sums.
Job<int, int, int, std::pair<int, int>> ModuloCountJob() {
  Job<int, int, int, std::pair<int, int>> job;
  job.map_fn = [](const std::vector<int>& split, Emitter<int, int>* out) {
    for (int v : split) out->Emit(v % 3, 1);
  };
  job.reduce_fn = [](const int& key, std::vector<int>& values,
                     std::vector<std::pair<int, int>>* out) {
    int total = 0;
    for (int v : values) total += v;
    out->emplace_back(key, total);
  };
  job.tuple_bytes = [](const int&, const int&) { return uint64_t{12}; };
  job.input_record_bytes = 4;
  return job;
}

TEST(EngineTest, CountsCorrectly) {
  auto job = ModuloCountJob();
  const std::vector<std::vector<int>> splits = {{0, 1, 2, 3}, {4, 5, 6}};
  auto result = RunJob(splits, job);
  ASSERT_TRUE(result.ok());
  // 0,3,6 -> key 0 (3); 1,4 -> key 1 (2); 2,5 -> key 2 (2).
  std::map<int, int> counts;
  for (auto& [k, c] : result.Value().output) counts[k] = c;
  EXPECT_EQ(counts[0], 3);
  EXPECT_EQ(counts[1], 2);
  EXPECT_EQ(counts[2], 2);
}

TEST(EngineTest, StatsAccounting) {
  auto job = ModuloCountJob();
  const std::vector<std::vector<int>> splits = {{0, 1, 2, 3}, {4, 5, 6}};
  auto result = RunJob(splits, job);
  ASSERT_TRUE(result.ok());
  const JobStats& stats = result.Value().stats;
  EXPECT_EQ(stats.num_map_tasks, 2u);
  EXPECT_EQ(stats.num_reduce_tasks, 1u);
  EXPECT_EQ(stats.input_bytes, 7u * 4);
  EXPECT_EQ(stats.shuffle_tuples, 7u);  // One pair per record.
  EXPECT_EQ(stats.shuffle_bytes, 7u * 12);
  EXPECT_EQ(stats.output_records, 3u);
  EXPECT_GE(stats.map_compute_sec, 0.0);
  EXPECT_GE(stats.reduce_compute_sec, 0.0);
}

TEST(EngineTest, TaskReduceSeesWholePartition) {
  Job<int, int, int, int> job;
  job.map_fn = [](const std::vector<int>& split, Emitter<int, int>* out) {
    for (int v : split) out->Emit(v, v);
  };
  job.task_reduce_fn = [](std::map<int, std::vector<int>>& groups,
                          std::vector<int>* out) {
    out->push_back(static_cast<int>(groups.size()));
  };
  job.tuple_bytes = [](const int&, const int&) { return uint64_t{8}; };
  auto result = RunJob({{1, 2, 3}, {3, 4}}, job);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.Value().output.size(), 1u);
  EXPECT_EQ(result.Value().output[0], 4);  // Keys 1..4.
}

TEST(EngineTest, MultipleReduceTasksPartitionKeys) {
  Job<int, int, int, std::pair<int, int>> job = ModuloCountJob();
  job.num_reduce_tasks = 3;
  job.partition_fn = [](const int& key) { return static_cast<size_t>(key); };
  const std::vector<std::vector<int>> splits = {{0, 1, 2, 3, 4, 5}};
  auto result = RunJob(splits, job);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.Value().stats.num_reduce_tasks, 3u);
  EXPECT_EQ(result.Value().output.size(), 3u);
}

TEST(EngineTest, ConfigValidation) {
  Job<int, int, int, int> job;
  const std::vector<std::vector<int>> one_split = {{1}};
  // Missing everything.
  EXPECT_FALSE(RunJob(one_split, job).ok());
  job.map_fn = [](const std::vector<int>&, Emitter<int, int>*) {};
  EXPECT_FALSE(RunJob(one_split, job).ok());  // no tuple_bytes
  job.tuple_bytes = [](const int&, const int&) { return uint64_t{1}; };
  EXPECT_FALSE(RunJob(one_split, job).ok());  // no reducer
  job.reduce_fn = [](const int&, std::vector<int>&, std::vector<int>*) {};
  job.task_reduce_fn = [](std::map<int, std::vector<int>>&,
                          std::vector<int>*) {};
  EXPECT_FALSE(RunJob(one_split, job).ok());  // both set
  job.task_reduce_fn = nullptr;
  job.num_reduce_tasks = 0;
  EXPECT_FALSE(RunJob(one_split, job).ok());
  job.num_reduce_tasks = 1;
  EXPECT_TRUE(RunJob(one_split, job).ok());
}

TEST(EngineTest, EmptySplitsProduceNothing) {
  auto job = ModuloCountJob();
  auto result = RunJob(std::vector<std::vector<int>>{}, job);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.Value().output.empty());
  EXPECT_EQ(result.Value().stats.num_map_tasks, 0u);
}

TEST(EngineTest, DeterministicReduceOrder) {
  // Keys inside a reduce task are processed in sorted order.
  Job<int, int, int, int> job;
  job.map_fn = [](const std::vector<int>& split, Emitter<int, int>* out) {
    for (int v : split) out->Emit(v, v);
  };
  job.reduce_fn = [](const int& key, std::vector<int>&, std::vector<int>* out) {
    out->push_back(key);
  };
  job.tuple_bytes = [](const int&, const int&) { return uint64_t{8}; };
  auto result = RunJob({{5, 3, 9, 1}}, job);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.Value().output, (std::vector<int>{1, 3, 5, 9}));
}

}  // namespace
}  // namespace csod::mr
