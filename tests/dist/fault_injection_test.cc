// Fault-injection subsystem tests (docs/FAULT_MODEL.md): seeded
// determinism of the injector, channel accounting under faults, the
// coordinator's retry/timeout/backoff loop, and degraded-mode partial-sum
// recovery in the CS protocols.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "dist/adaptive_cs_protocol.h"
#include "dist/cs_protocol.h"
#include "dist/fault.h"
#include "outlier/metrics.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

namespace csod::dist {
namespace {

struct TestSetup {
  std::vector<double> global;
  std::unique_ptr<Cluster> cluster;
  outlier::OutlierSet truth;
};

TestSetup MakeSetup(size_t n, size_t s, size_t num_nodes, size_t k,
                    uint64_t seed) {
  workload::MajorityDominatedOptions gen;
  gen.n = n;
  gen.sparsity = s;
  gen.seed = seed;
  TestSetup setup;
  setup.global = workload::GenerateMajorityDominated(gen).Value();

  workload::PartitionOptions part;
  part.num_nodes = num_nodes;
  part.strategy = workload::PartitionStrategy::kSkewedSplit;
  part.seed = seed + 1;
  auto slices = workload::PartitionAdditive(setup.global, part).Value();

  setup.cluster = std::make_unique<Cluster>(n);
  for (auto& slice : slices) {
    EXPECT_TRUE(setup.cluster->AddNode(std::move(slice)).ok());
  }
  setup.truth = outlier::ExactKOutliers(setup.global, k);
  return setup;
}

// A small sparse slice used as the *crashed* node in degraded-recovery
// tests: when it is the only excluded node, the partial aggregate is
// exactly the generated global vector — still majority-dominated and
// s-sparse, so BOMP recovery of the degraded answer is exact.
cs::SparseSlice ExtraOutlierSlice() {
  cs::SparseSlice slice;
  slice.indices = {3, 50, 200};
  slice.values = {2500.0, -3100.0, 1800.0};
  return slice;
}

bool SameOutliers(const outlier::OutlierSet& a, const outlier::OutlierSet& b) {
  if (a.mode != b.mode || a.outliers.size() != b.outliers.size()) return false;
  for (size_t i = 0; i < a.outliers.size(); ++i) {
    if (a.outliers[i].key_index != b.outliers[i].key_index ||
        a.outliers[i].value != b.outliers[i].value) {
      return false;
    }
  }
  return true;
}

TEST(FaultInjectorTest, DecisionsAreAPureFunctionOfTheSeed) {
  FaultPlan plan;
  plan.seed = 77;
  plan.drop_rate = 0.3;
  plan.straggler_rate = 0.2;
  plan.duplicate_rate = 0.1;
  plan.crash_rate = 0.05;
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  plan.seed = 78;
  const FaultInjector c(plan);

  bool any_difference_from_c = false;
  for (NodeId node = 0; node < 16; ++node) {
    for (uint64_t round = 0; round < 4; ++round) {
      for (uint64_t attempt = 0; attempt < 4; ++attempt) {
        const Delivery da = a.Decide(node, round, attempt);
        const Delivery db = b.Decide(node, round, attempt);
        EXPECT_EQ(da.crashed, db.crashed);
        EXPECT_EQ(da.dropped, db.dropped);
        EXPECT_EQ(da.delay_ticks, db.delay_ticks);
        EXPECT_EQ(da.duplicated, db.duplicated);
        const Delivery dc = c.Decide(node, round, attempt);
        any_difference_from_c |=
            da.crashed != dc.crashed || da.dropped != dc.dropped ||
            da.delay_ticks != dc.delay_ticks || da.duplicated != dc.duplicated;
      }
    }
  }
  EXPECT_TRUE(any_difference_from_c);
}

TEST(FaultInjectorTest, ForcedCrashIsPermanent) {
  FaultPlan plan;
  plan.seed = 5;
  plan.crash_nodes = {3};
  const FaultInjector injector(plan);
  EXPECT_TRUE(injector.NodeCrashed(3));
  EXPECT_FALSE(injector.NodeCrashed(2));
  for (uint64_t round = 0; round < 3; ++round) {
    for (uint64_t attempt = 0; attempt < 5; ++attempt) {
      EXPECT_TRUE(injector.Decide(3, round, attempt).crashed);
      EXPECT_FALSE(injector.Decide(2, round, attempt).crashed);
    }
  }
}

TEST(RetryPolicyTest, TimeoutBacksOffExponentially) {
  RetryPolicy retry;
  retry.timeout_ticks = 4;
  retry.backoff = 2.0;
  EXPECT_EQ(retry.TimeoutForAttempt(0), 4u);
  EXPECT_EQ(retry.TimeoutForAttempt(1), 8u);
  EXPECT_EQ(retry.TimeoutForAttempt(2), 16u);
  EXPECT_EQ(retry.TimeoutForAttempt(3), 32u);
}

TEST(RetryPolicyTest, BackoffBelowOneClampsToFlatTimeouts) {
  // backoff < 1 would make every retry *stricter* than attempt 0; the
  // policy clamps it to 1 (flat), it never rejects or shrinks.
  RetryPolicy retry;
  retry.timeout_ticks = 6;
  retry.backoff = 0.25;
  for (size_t attempt = 0; attempt < 8; ++attempt) {
    EXPECT_EQ(retry.TimeoutForAttempt(attempt), 6u) << attempt;
  }
  retry.backoff = 1.0;  // Exactly flat is also valid.
  EXPECT_EQ(retry.TimeoutForAttempt(50), 6u);
  retry.backoff = -3.0;  // Nonsense negative backoff clamps the same way.
  EXPECT_EQ(retry.TimeoutForAttempt(7), 6u);
}

TEST(RetryPolicyTest, OverflowSaturatesToWaitForever) {
  RetryPolicy retry;
  retry.timeout_ticks = 1000;
  retry.backoff = 10.0;
  // 1000 * 10^16 = 10^19 > 2^63: saturated, not wrapped.
  EXPECT_EQ(retry.TimeoutForAttempt(16), UINT64_MAX);
  EXPECT_EQ(retry.TimeoutForAttempt(400), UINT64_MAX);  // Stays saturated.
  // The attempt just below the overflow threshold is still exact.
  EXPECT_EQ(retry.TimeoutForAttempt(3), 1000000u);
  // Once saturated, "wait forever" beats any finite delay.
  Delivery slow;
  slow.delay_ticks = UINT64_MAX - 1;
  EXPECT_TRUE(slow.Arrived(retry.TimeoutForAttempt(16)));
}

TEST(RetryPolicyTest, ZeroTimeoutAdmitsOnlyImmediateDeliveries) {
  // timeout_ticks == 0 is valid: the strictest policy, where only
  // zero-delay messages pass — it must not trip division or overflow
  // paths, and backoff multiplies 0 into 0 forever.
  RetryPolicy retry;
  retry.timeout_ticks = 0;
  retry.backoff = 2.0;
  for (size_t attempt = 0; attempt < 70; ++attempt) {
    EXPECT_EQ(retry.TimeoutForAttempt(attempt), 0u) << attempt;
  }
  Delivery on_time;
  EXPECT_TRUE(on_time.Arrived(retry.TimeoutForAttempt(0)));
  Delivery late;
  late.delay_ticks = 1;
  EXPECT_FALSE(late.Arrived(retry.TimeoutForAttempt(5)));
}

TEST(RetryPolicyTest, FractionalBackoffRoundsUpPerAttempt) {
  RetryPolicy retry;
  retry.timeout_ticks = 3;
  retry.backoff = 1.5;
  EXPECT_EQ(retry.TimeoutForAttempt(0), 3u);
  EXPECT_EQ(retry.TimeoutForAttempt(1), 5u);   // ceil(4.5)
  EXPECT_EQ(retry.TimeoutForAttempt(2), 7u);   // ceil(6.75)
  EXPECT_EQ(retry.TimeoutForAttempt(3), 11u);  // ceil(10.125)
}

TEST(DeliveryBoundaryTest, ArrivalAtExactlyTheTimeoutCounts) {
  // The timeout is inclusive: a message delayed by exactly timeout_ticks
  // arrived "within" the coordinator's wait. One tick more misses it.
  Delivery d;
  d.delay_ticks = 6;
  EXPECT_TRUE(d.Arrived(6));
  EXPECT_FALSE(d.Arrived(5));
  d.delay_ticks = 7;
  EXPECT_FALSE(d.Arrived(6));
  // Dropped and crashed messages never arrive, at any timeout.
  Delivery dropped;
  dropped.dropped = true;
  EXPECT_FALSE(dropped.Arrived(UINT64_MAX));
  Delivery crashed;
  crashed.crashed = true;
  EXPECT_FALSE(crashed.Arrived(UINT64_MAX));
}

TEST(DeliveryBoundaryTest, StragglerAtExactTimeoutNeedsNoRetry) {
  // End-to-end version of the boundary: every message straggles by
  // exactly timeout_ticks, so attempt 0 succeeds and no retry bytes or
  // re-requests exist anywhere in the accounting.
  FaultPlan plan;
  plan.seed = 31;
  plan.straggler_rate = 1.0;
  plan.straggler_delay_ticks = 4;
  const FaultInjector injector(plan);
  CommStats comm;
  Channel channel(&comm, &injector);
  channel.BeginRound();
  RetryPolicy retry;
  retry.timeout_ticks = 4;
  CollectionReport report;
  const std::vector<bool> delivered = CollectWithRetry(
      &channel, retry, {0, 1, 2}, "measurements", 10, kMeasurementBytes,
      &report);
  EXPECT_EQ(delivered, std::vector<bool>(3, true));
  EXPECT_EQ(report.retries, 0u);
  EXPECT_TRUE(report.excluded_nodes.empty());
  EXPECT_EQ(channel.fault_stats().delayed, 3u);
  EXPECT_EQ(comm.bytes_by_phase().count("measurements-retry"), 0u);
  EXPECT_EQ(comm.bytes_by_phase().count("retry-request"), 0u);
  EXPECT_EQ(comm.bytes_total(), 3u * 10u * kMeasurementBytes);
}

TEST(DeliveryBoundaryTest, DuplicateDedupPaysBytesOnceDeliversOnce) {
  // Every message is transmitted twice; the coordinator dedups by
  // (node, round, attempt). The wire pays for both copies — same phase,
  // double the bytes — but each node is delivered exactly once and no
  // retry machinery engages.
  FaultPlan plan;
  plan.seed = 77;
  plan.duplicate_rate = 1.0;
  const FaultInjector injector(plan);
  CommStats comm;
  Channel channel(&comm, &injector);
  channel.BeginRound();
  RetryPolicy retry;
  CollectionReport report;
  const std::vector<bool> delivered = CollectWithRetry(
      &channel, retry, {0, 1, 2, 3}, "measurements", 25, kMeasurementBytes,
      &report);
  EXPECT_EQ(delivered, std::vector<bool>(4, true));
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(channel.fault_stats().attempts, 4u);  // Per-attempt, not per-copy.
  EXPECT_EQ(channel.fault_stats().duplicates, 4u);
  // Both copies land in the same phase bucket: 2 × 4 nodes × 25 tuples.
  EXPECT_EQ(comm.bytes_by_phase().at("measurements"),
            2u * 4u * 25u * kMeasurementBytes);
  EXPECT_EQ(comm.tuples_total(), 2u * 4u * 25u);
}

TEST(ChannelFaultTest, NoInjectorMatchesDirectAccounting) {
  CommStats direct;
  direct.BeginRound();
  direct.Account("phase-a", 10, kMeasurementBytes);
  direct.Account("phase-b", 3, kKeyValueBytes);

  CommStats via_channel;
  Channel channel(&via_channel);
  channel.BeginRound();
  const Delivery d = channel.Send(0, "phase-a", 10, kMeasurementBytes);
  channel.Control("phase-b", 3, kKeyValueBytes);

  EXPECT_TRUE(d.Arrived(0));
  EXPECT_FALSE(d.duplicated);
  EXPECT_EQ(via_channel.bytes_total(), direct.bytes_total());
  EXPECT_EQ(via_channel.tuples_total(), direct.tuples_total());
  EXPECT_EQ(via_channel.rounds(), direct.rounds());
  EXPECT_EQ(via_channel.bytes_by_phase(), direct.bytes_by_phase());
}

TEST(ChannelFaultTest, DuplicateCostsTwiceCrashCostsNothing) {
  FaultPlan plan;
  plan.seed = 9;
  plan.duplicate_rate = 1.0;
  plan.crash_nodes = {7};
  const FaultInjector injector(plan);
  CommStats comm;
  Channel channel(&comm, &injector);
  channel.BeginRound();

  const Delivery dup = channel.Send(1, "measurements", 10, kMeasurementBytes);
  EXPECT_TRUE(dup.duplicated);
  EXPECT_TRUE(dup.Arrived(0));
  EXPECT_EQ(comm.bytes_total(), 2u * 10u * kMeasurementBytes);

  const Delivery dead = channel.Send(7, "measurements", 10, kMeasurementBytes);
  EXPECT_TRUE(dead.crashed);
  EXPECT_FALSE(dead.Arrived(1000));
  EXPECT_EQ(comm.bytes_total(), 2u * 10u * kMeasurementBytes);
  EXPECT_EQ(channel.fault_stats().duplicates, 1u);
  EXPECT_EQ(channel.fault_stats().crashed, 1u);
}

TEST(ChannelFaultTest, SendKeysFaultDrawsOnTheCurrentRound) {
  // Regression: Channel::BeginRound once derived its round key from a
  // dead `rounds() == 0` branch, so every Send drew faults as round 0 and
  // multi-round protocols never re-drew. Pin the contract: after the Nth
  // BeginRound (1-based), Send(node, ..., attempt) must decide exactly as
  // FaultInjector::Decide(node, N - 1, attempt).
  FaultPlan plan;
  plan.seed = 21;
  plan.drop_rate = 0.4;
  plan.straggler_rate = 0.3;
  plan.duplicate_rate = 0.2;
  const FaultInjector injector(plan);
  CommStats comm;
  Channel channel(&comm, &injector);

  bool rounds_diverged = false;
  Delivery first_round_draw;
  for (uint64_t n = 1; n <= 6; ++n) {
    channel.BeginRound();
    for (uint64_t attempt = 0; attempt < 3; ++attempt) {
      const Delivery expected = injector.Decide(2, n - 1, attempt);
      const Delivery got =
          channel.Send(2, "measurements", 4, kMeasurementBytes, attempt);
      EXPECT_EQ(got.crashed, expected.crashed) << "round " << n;
      EXPECT_EQ(got.dropped, expected.dropped) << "round " << n;
      EXPECT_EQ(got.delay_ticks, expected.delay_ticks) << "round " << n;
      EXPECT_EQ(got.duplicated, expected.duplicated) << "round " << n;
      if (attempt == 0) {
        if (n == 1) {
          first_round_draw = got;
        } else if (got.dropped != first_round_draw.dropped ||
                   got.delay_ticks != first_round_draw.delay_ticks ||
                   got.duplicated != first_round_draw.duplicated) {
          rounds_diverged = true;
        }
      }
    }
  }
  // With these rates at this seed, later rounds draw differently from
  // round 0 — the observable symptom the dead branch suppressed.
  EXPECT_TRUE(rounds_diverged);
}

TEST(CsProtocolFaultTest, StragglerRetriesThenSucceedsWithRetryPhaseBytes) {
  // Every message straggles by 6 ticks; the first attempt times out at 4,
  // the re-requested attempt waits 8 and succeeds. The answer must be
  // bit-identical to a fault-free run — only the accounting differs.
  const size_t n = 600;
  const size_t s = 12;
  const size_t k = 5;
  const size_t num_nodes = 6;
  TestSetup setup = MakeSetup(n, s, num_nodes, k, 101);

  CsProtocolOptions options;
  options.m = 180;
  options.seed = 13;
  options.iterations = s + 4;

  CsOutlierProtocol clean(options);
  CommStats clean_comm;
  auto clean_result = clean.Run(*setup.cluster, k, &clean_comm);
  ASSERT_TRUE(clean_result.ok());

  options.faults.seed = 42;
  options.faults.straggler_rate = 1.0;
  options.faults.straggler_delay_ticks = 6;
  options.retry.timeout_ticks = 4;
  options.retry.backoff = 2.0;
  options.retry.max_retries = 2;
  CsOutlierProtocol faulty(options);
  CommStats comm;
  auto result = faulty.Run(*setup.cluster, k, &comm);
  ASSERT_TRUE(result.ok());

  EXPECT_TRUE(SameOutliers(clean_result.Value(), result.Value()));
  EXPECT_FALSE(faulty.last_collection().degraded());
  EXPECT_EQ(faulty.last_collection().retries, num_nodes);

  // Retry traffic is separable from first-attempt traffic by phase label.
  const auto& by_phase = comm.bytes_by_phase();
  ASSERT_TRUE(by_phase.count("measurements"));
  ASSERT_TRUE(by_phase.count("measurements-retry"));
  ASSERT_TRUE(by_phase.count("retry-request"));
  EXPECT_EQ(by_phase.at("measurements"),
            num_nodes * options.m * kMeasurementBytes);
  EXPECT_EQ(by_phase.at("measurements-retry"),
            num_nodes * options.m * kMeasurementBytes);
  EXPECT_EQ(by_phase.at("retry-request"), num_nodes * kValueBytes);
  EXPECT_EQ(clean_comm.bytes_by_phase().count("measurements-retry"), 0u);
}

TEST(CsProtocolFaultTest, RetryExhaustedRecoversFromPartialSum) {
  // The ISSUE acceptance scenario: 1 of 16 nodes crashed before sending,
  // retries exhausted — the protocol still answers, reports the excluded
  // node, and its answer is the *exact* answer for the partial aggregate
  // Σ_{alive} x_l (CS linearity).
  const size_t n = 1200;
  const size_t s = 20;
  const size_t k = 5;
  TestSetup setup = MakeSetup(n, s, 15, k, 303);
  const NodeId crashed =
      setup.cluster->AddNode(ExtraOutlierSlice()).Value();
  setup.truth = outlier::ExactKOutliers(setup.cluster->GlobalAggregate(), k);

  CsProtocolOptions options;
  options.m = 320;
  options.seed = 21;
  options.iterations = 2 * s;
  options.faults.seed = 8;
  options.faults.crash_nodes = {crashed};
  options.retry.max_retries = 2;
  CsOutlierProtocol protocol(options);
  CommStats comm;
  auto result = protocol.Run(*setup.cluster, k, &comm);
  ASSERT_TRUE(result.ok());

  const CollectionReport& report = protocol.last_collection();
  EXPECT_TRUE(report.degraded());
  EXPECT_EQ(report.nodes_total, 16u);
  ASSERT_EQ(report.excluded_nodes.size(), 1u);
  EXPECT_EQ(report.excluded_nodes[0], crashed);
  // The crashed node transmitted nothing; 15 nodes paid first-attempt
  // bytes and the coordinator paid 2 futile re-requests.
  EXPECT_EQ(comm.bytes_by_phase().at("measurements"),
            15u * options.m * kMeasurementBytes);
  EXPECT_EQ(comm.bytes_by_phase().at("retry-request"),
            options.retry.max_retries * kValueBytes);

  // Degraded recovery == exact recovery of the partial aggregate.
  const outlier::OutlierSet partial_truth = outlier::ExactKOutliers(
      setup.cluster->GlobalAggregateExcluding(report.excluded_nodes), k);
  EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(partial_truth, result.Value()), 0.0);
  EXPECT_LT(outlier::ErrorOnValue(partial_truth, result.Value()), 1e-6);

  // Degraded-run accounting against the *full-cluster* truth.
  const outlier::DegradedRunStats stats = outlier::EvaluateDegradedRun(
      setup.truth, result.Value(), report.nodes_total,
      report.excluded_nodes.size(), report.retries);
  EXPECT_EQ(stats.nodes_excluded, 1u);
  EXPECT_NEAR(stats.excluded_fraction(), 1.0 / 16.0, 1e-12);
  EXPECT_GE(stats.quality.recall, 0.0);
  EXPECT_LE(stats.quality.recall, 1.0);
}

TEST(CsProtocolFaultTest, ZeroRatePlanIsBitIdenticalToFaultFreeRun) {
  const size_t k = 5;
  TestSetup setup = MakeSetup(500, 10, 8, k, 505);

  CsProtocolOptions options;
  options.m = 150;
  options.seed = 7;
  options.iterations = 14;
  CsOutlierProtocol plain(options);

  CsProtocolOptions zero = options;
  zero.faults.seed = 12345;  // Seed set, every rate zero: no injector.
  CsOutlierProtocol with_plan(zero);

  CommStats comm_a, comm_b;
  auto a = plain.Run(*setup.cluster, k, &comm_a);
  auto b = with_plan.Run(*setup.cluster, k, &comm_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(SameOutliers(a.Value(), b.Value()));
  EXPECT_EQ(comm_a.bytes_total(), comm_b.bytes_total());
  EXPECT_EQ(comm_a.bytes_by_phase(), comm_b.bytes_by_phase());
  EXPECT_FALSE(with_plan.last_collection().degraded());
}

TEST(CsProtocolFaultTest, SameFaultSeedSameRunDifferentSeedMayDiffer) {
  const size_t k = 5;
  TestSetup setup = MakeSetup(800, 15, 8, k, 707);

  CsProtocolOptions options;
  options.m = 220;
  options.seed = 3;
  options.iterations = 20;
  options.faults.seed = 99;
  options.faults.drop_rate = 0.45;
  options.retry.max_retries = 1;  // Tight budget: some nodes get excluded.

  CsOutlierProtocol first(options);
  CsOutlierProtocol second(options);
  CommStats comm_a, comm_b;
  auto a = first.Run(*setup.cluster, k, &comm_a);
  auto b = second.Run(*setup.cluster, k, &comm_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(SameOutliers(a.Value(), b.Value()));
  EXPECT_EQ(comm_a.bytes_total(), comm_b.bytes_total());
  EXPECT_EQ(first.last_collection().excluded_nodes,
            second.last_collection().excluded_nodes);
  EXPECT_EQ(first.last_collection().retries, second.last_collection().retries);
  // The fault history under this seed produced retries (checked so the
  // determinism assertions above are not vacuous).
  EXPECT_GT(first.last_collection().retries, 0u);
}

TEST(CsProtocolFaultTest, DegradedDisallowedFailsLoudly) {
  TestSetup setup = MakeSetup(400, 8, 4, 5, 909);
  CsProtocolOptions options;
  options.m = 120;
  options.iterations = 12;
  options.faults.crash_nodes = {setup.cluster->NodeIds()[0]};
  options.allow_degraded = false;
  CsOutlierProtocol protocol(options);
  CommStats comm;
  auto result = protocol.Run(*setup.cluster, 5, &comm);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CsProtocolFaultTest, AllNodesCrashedIsAnError) {
  TestSetup setup = MakeSetup(300, 6, 3, 5, 111);
  CsProtocolOptions options;
  options.m = 100;
  options.iterations = 10;
  options.faults.crash_nodes = setup.cluster->NodeIds();
  CsOutlierProtocol protocol(options);
  CommStats comm;
  auto result = protocol.Run(*setup.cluster, 5, &comm);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(AdaptiveFaultTest, CrashedNodeExcludedOnceAcrossRounds) {
  const size_t k = 5;
  TestSetup setup = MakeSetup(900, 12, 7, k, 606);
  const NodeId crashed =
      setup.cluster->AddNode(ExtraOutlierSlice()).Value();

  AdaptiveCsOptions options;
  options.initial_m = 32;
  options.max_m = 512;
  options.seed = 17;
  options.iterations = 12 + 8;
  options.faults.seed = 4;
  options.faults.crash_nodes = {crashed};
  options.retry.max_retries = 1;
  AdaptiveCsProtocol protocol(options);
  CommStats comm;
  auto result = protocol.Run(*setup.cluster, k, &comm);
  ASSERT_TRUE(result.ok());

  const CollectionReport& report = protocol.last_collection();
  ASSERT_EQ(report.excluded_nodes.size(), 1u);  // Once, not once per round.
  EXPECT_EQ(report.excluded_nodes[0], crashed);
  EXPECT_GT(protocol.rounds().size(), 0u);

  // Degraded adaptive recovery matches the partial-aggregate truth.
  const outlier::OutlierSet partial_truth = outlier::ExactKOutliers(
      setup.cluster->GlobalAggregateExcluding({crashed}), k);
  EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(partial_truth, result.Value()), 0.0);
}

TEST(AdaptiveFaultTest, ZeroFaultPlanKeepsAccountingIdentical) {
  const size_t k = 5;
  TestSetup setup = MakeSetup(700, 10, 6, k, 808);
  AdaptiveCsOptions options;
  options.initial_m = 32;
  options.max_m = 512;
  options.seed = 11;
  options.iterations = 18;

  AdaptiveCsProtocol plain(options);
  AdaptiveCsOptions zero = options;
  zero.faults.seed = 999;  // Rates all zero: no injector attached.
  AdaptiveCsProtocol with_plan(zero);

  CommStats comm_a, comm_b;
  auto a = plain.Run(*setup.cluster, k, &comm_a);
  auto b = with_plan.Run(*setup.cluster, k, &comm_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(SameOutliers(a.Value(), b.Value()));
  EXPECT_EQ(comm_a.bytes_total(), comm_b.bytes_total());
  EXPECT_EQ(comm_a.rounds(), comm_b.rounds());
}

TEST(ClusterDegradedTest, GlobalAggregateExcludingSubtractsSlices) {
  Cluster cluster(4);
  cs::SparseSlice a;
  a.indices = {0, 1};
  a.values = {1.0, 2.0};
  cs::SparseSlice b;
  b.indices = {1, 3};
  b.values = {10.0, 20.0};
  const NodeId id_a = cluster.AddNode(std::move(a)).Value();
  const NodeId id_b = cluster.AddNode(std::move(b)).Value();

  const std::vector<double> full = cluster.GlobalAggregate();
  EXPECT_EQ(full, (std::vector<double>{1.0, 12.0, 0.0, 20.0}));
  EXPECT_EQ(cluster.GlobalAggregateExcluding({id_b}),
            (std::vector<double>{1.0, 2.0, 0.0, 0.0}));
  EXPECT_EQ(cluster.GlobalAggregateExcluding({id_a, id_b}),
            (std::vector<double>(4, 0.0)));
  EXPECT_EQ(cluster.GlobalAggregateExcluding({}), full);
}

TEST(MetricsDegradedTest, KeyQualitySeparatesPrecisionFromRecall) {
  auto set_of = [](std::vector<size_t> keys) {
    outlier::OutlierSet s;
    for (size_t key : keys) {
      s.outliers.push_back(outlier::Outlier{key, 1.0, 1.0});
    }
    return s;
  };
  const outlier::OutlierSet truth = set_of({1, 2, 3, 4});

  const outlier::KeySetQuality half = outlier::KeyQuality(truth,
                                                          set_of({1, 2, 5, 6}));
  EXPECT_DOUBLE_EQ(half.precision, 0.5);
  EXPECT_DOUBLE_EQ(half.recall, 0.5);
  EXPECT_DOUBLE_EQ(half.f1, 0.5);

  // A short (degraded) estimate: precise but incomplete.
  const outlier::KeySetQuality short_est =
      outlier::KeyQuality(truth, set_of({1, 2}));
  EXPECT_DOUBLE_EQ(short_est.precision, 1.0);
  EXPECT_DOUBLE_EQ(short_est.recall, 0.5);

  const outlier::KeySetQuality empty = outlier::KeyQuality(truth, set_of({}));
  EXPECT_DOUBLE_EQ(empty.precision, 1.0);
  EXPECT_DOUBLE_EQ(empty.recall, 0.0);
  EXPECT_DOUBLE_EQ(empty.f1, 0.0);
}

TEST(CoreDegradedTest, DetectExcludingMatchesDetectorWithoutTheSource) {
  const size_t n = 500;
  const size_t k = 5;
  TestSetup setup = MakeSetup(n, 10, 3, k, 121);

  core::DetectorOptions options;
  options.n = n;
  options.m = 150;
  options.seed = 31;
  options.iterations = 14;

  auto full = core::DistributedOutlierDetector::Create(options).MoveValue();
  auto partial = core::DistributedOutlierDetector::Create(options).MoveValue();
  std::vector<core::SourceId> ids;
  for (NodeId node : setup.cluster->NodeIds()) {
    const cs::SparseSlice* slice = setup.cluster->Slice(node).Value();
    ids.push_back(full->AddSource(*slice).Value());
    partial->AddSource(*slice).Value();
  }
  ids.push_back(full->AddSource(ExtraOutlierSlice()).Value());

  // Subtracting the excluded sketch from the global measurement and
  // summing only the surviving sketches differ by floating-point rounding,
  // so compare by key set and value tolerance, not bitwise.
  auto degraded = full->DetectExcluding({ids.back()}, k);
  ASSERT_TRUE(degraded.ok());
  auto reference = partial->Detect(k);
  ASSERT_TRUE(reference.ok());
  EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(reference.Value(), degraded.Value()),
                   0.0);
  EXPECT_LT(outlier::ErrorOnValue(reference.Value(), degraded.Value()), 1e-9);
  EXPECT_NEAR(degraded.Value().mode, reference.Value().mode, 1e-6);

  // Sources stay registered: a later full Detect sees all of them.
  EXPECT_EQ(full->num_sources(), ids.size());
  EXPECT_FALSE(full->DetectExcluding({9999}, k).ok());
  EXPECT_FALSE(full->DetectExcluding(ids, k).ok());  // Nothing left.
  EXPECT_FALSE(full->DetectExcluding({ids[0], ids[0]}, k).ok());  // Dup.
}

}  // namespace
}  // namespace csod::dist
