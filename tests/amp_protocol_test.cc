#include "dist/amp_protocol.h"

#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cs/compressor.h"
#include "dist/cs_protocol.h"
#include "la/vector_ops.h"
#include "outlier/metrics.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

namespace csod::dist {
namespace {

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

struct TestCluster {
  std::vector<double> global;
  std::unique_ptr<Cluster> cluster;
  outlier::OutlierSet truth;
};

TestCluster MakeSetup(size_t n, size_t s, size_t k, uint64_t seed) {
  workload::MajorityDominatedOptions gen;
  gen.n = n;
  gen.sparsity = s;
  gen.seed = seed;
  TestCluster setup;
  setup.global = workload::GenerateMajorityDominated(gen).MoveValue();

  workload::PartitionOptions part;
  part.num_nodes = 6;
  part.strategy = workload::PartitionStrategy::kSkewedSplit;
  part.seed = seed + 1;
  auto slices = workload::PartitionAdditive(setup.global, part).MoveValue();
  setup.cluster = std::make_unique<Cluster>(n);
  for (auto& slice : slices) {
    EXPECT_TRUE(setup.cluster->AddNode(std::move(slice)).ok());
  }
  setup.truth = outlier::ExactKOutliers(setup.global, k);
  return setup;
}

TEST(AmpProtocolTest, ValidatesOptions) {
  Cluster cluster(10);
  ASSERT_TRUE(cluster.AddNode({}).ok());
  CommStats comm;

  DistributedAmpOptions bad;  // m == 0.
  EXPECT_FALSE(DistributedAmpProtocol(bad).Run(cluster, 3, &comm).ok());
  bad.m = 64;
  bad.max_rounds = 0;
  EXPECT_FALSE(DistributedAmpProtocol(bad).Run(cluster, 3, &comm).ok());
  bad.max_rounds = 5;
  bad.threshold_decay = 1.0;
  EXPECT_FALSE(DistributedAmpProtocol(bad).Run(cluster, 3, &comm).ok());
  bad.threshold_decay = 0.3;
  EXPECT_FALSE(DistributedAmpProtocol(bad).Run(cluster, 3, nullptr).ok());
  Cluster empty(10);
  EXPECT_FALSE(DistributedAmpProtocol(bad).Run(empty, 3, &comm).ok());
}

TEST(AmpProtocolTest, FlushRoundMatchesCentralizedAmpBitwise) {
  // With stable-top-k acceptance off the protocol runs to its final flush
  // round, after which ŷ is the exact aggregate — so the answer must be
  // bit-identical to RunBiasedAmp on the per-node fold.
  const size_t k = 5;
  TestCluster setup = MakeSetup(600, 12, k, 7);

  DistributedAmpOptions options;
  options.m = 220;
  options.seed = 19;
  options.max_rounds = 3;
  options.accept_on_stable_topk = false;
  DistributedAmpProtocol protocol(options);
  CommStats comm;
  auto result = protocol.Run(*setup.cluster, k, &comm).MoveValue();
  ASSERT_EQ(protocol.rounds().size(), options.max_rounds);
  EXPECT_TRUE(protocol.rounds().back().accepted);

  // Reference: fold the per-node measurements in node order (exactly the
  // aggregation the coordinator performs) and recover centrally.
  cs::MeasurementMatrix matrix(options.m, setup.cluster->key_space_size(),
                               options.seed);
  cs::Compressor compressor(&matrix);
  std::vector<double> y_hat(options.m, 0.0);
  for (NodeId id : setup.cluster->NodeIds()) {
    const cs::SparseSlice* slice = setup.cluster->Slice(id).Value();
    auto y_l = compressor.Compress(*slice).MoveValue();
    la::Axpy(1.0, y_l, &y_hat);
  }
  auto central = cs::RunBiasedAmp(matrix, y_hat, cs::AmpOptions{}).MoveValue();

  EXPECT_EQ(Bits(protocol.last_recovery().mode), Bits(central.mode));
  ASSERT_EQ(protocol.last_recovery().entries.size(), central.entries.size());
  for (size_t i = 0; i < central.entries.size(); ++i) {
    EXPECT_EQ(protocol.last_recovery().entries[i].index,
              central.entries[i].index);
    EXPECT_EQ(Bits(protocol.last_recovery().entries[i].value),
              Bits(central.entries[i].value));
  }
  EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(setup.truth, result), 0.0);
}

TEST(AmpProtocolTest, StableTopKShipsFewerTuplesThanFullTransfer) {
  const size_t k = 5;
  TestCluster setup = MakeSetup(800, 10, k, 11);

  DistributedAmpOptions options;
  options.m = 260;
  options.seed = 23;
  options.max_rounds = 6;
  DistributedAmpProtocol protocol(options);
  CommStats comm;
  auto result = protocol.Run(*setup.cluster, k, &comm).MoveValue();

  EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(setup.truth, result), 0.0);
  ASSERT_FALSE(protocol.rounds().empty());
  EXPECT_TRUE(protocol.rounds().back().accepted);

  // A full transfer ships L·M measurement components. Every shipped state
  // tuple is (row, value), plus L norm tuples in round 0; acceptance via
  // stable top-k must beat the full transfer on tuple count.
  const uint64_t full_transfer =
      setup.cluster->num_nodes() * options.m;
  EXPECT_LT(comm.tuples_total(), full_transfer);

  // Components never ship twice: summed state tuples stay under L·M even
  // if the protocol runs to flush.
  uint64_t state_tuples = 0;
  for (const AmpRound& round : protocol.rounds()) {
    state_tuples += round.tuples;
  }
  EXPECT_LE(state_tuples, full_transfer);
}

TEST(AmpProtocolTest, DegradedModeExcludesFailedNodes) {
  const size_t k = 4;
  TestCluster setup = MakeSetup(500, 8, k, 13);

  DistributedAmpOptions options;
  options.m = 180;
  options.seed = 29;
  options.faults.crash_nodes = {setup.cluster->NodeIds()[0]};
  DistributedAmpProtocol protocol(options);
  CommStats comm;
  auto result = protocol.Run(*setup.cluster, k, &comm);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(protocol.last_collection().excluded_nodes.empty());
  EXPECT_TRUE(protocol.last_collection().degraded());

  // The same fault plan with degraded mode disabled must fail loudly.
  options.allow_degraded = false;
  DistributedAmpProtocol strict(options);
  CommStats strict_comm;
  EXPECT_FALSE(strict.Run(*setup.cluster, k, &strict_comm).ok());
}

TEST(AmpProtocolTest, AccountsEveryPhaseThroughChannel) {
  const size_t k = 5;
  TestCluster setup = MakeSetup(600, 10, k, 17);

  DistributedAmpOptions options;
  options.m = 200;
  options.seed = 31;
  DistributedAmpProtocol protocol(options);
  CommStats comm;
  ASSERT_TRUE(protocol.Run(*setup.cluster, k, &comm).ok());

  const auto& by_phase = comm.bytes_by_phase();
  ASSERT_TRUE(by_phase.count("amp-norm"));
  ASSERT_TRUE(by_phase.count("amp-state"));
  ASSERT_TRUE(by_phase.count("amp-threshold"));
  EXPECT_EQ(by_phase.at("amp-norm"),
            setup.cluster->num_nodes() * kValueBytes);
  uint64_t state_tuples = 0;
  for (const AmpRound& round : protocol.rounds()) {
    state_tuples += round.tuples;
  }
  EXPECT_EQ(by_phase.at("amp-state"), state_tuples * kKeyValueBytes);
  EXPECT_EQ(comm.rounds(), protocol.rounds().size() + 1);  // + norm round.
}

}  // namespace
}  // namespace csod::dist
