#include "common/format.h"

#include <gtest/gtest.h>

#include "common/stopwatch.h"

namespace csod {
namespace {

TEST(FormatBytesTest, Units) {
  EXPECT_EQ(FormatBytes(0), "0 B");
  EXPECT_EQ(FormatBytes(999), "999 B");
  EXPECT_EQ(FormatBytes(1024), "1.00 KiB");
  EXPECT_EQ(FormatBytes(1536), "1.50 KiB");
  EXPECT_EQ(FormatBytes(uint64_t{1} << 20), "1.00 MiB");
  EXPECT_EQ(FormatBytes(uint64_t{3} << 30), "3.00 GiB");
  EXPECT_EQ(FormatBytes(uint64_t{2} << 40), "2.00 TiB");
  // Beyond TiB stays in TiB.
  EXPECT_EQ(FormatBytes(uint64_t{2048} << 40), "2048.00 TiB");
}

TEST(FormatPercentTest, Precision) {
  EXPECT_EQ(FormatPercent(0.0132), "1.3%");
  EXPECT_EQ(FormatPercent(0.0132, 2), "1.32%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
  EXPECT_EQ(FormatPercent(0.0), "0.0%");
}

TEST(FormatSecondsTest, MillisecondResolution) {
  EXPECT_EQ(FormatSeconds(12.3456), "12.346 s");
  EXPECT_EQ(FormatSeconds(0.0), "0.000 s");
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  // Busy-wait a tiny, bounded amount.
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  const double elapsed = watch.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.0);
  EXPECT_LT(elapsed, 10.0);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedSeconds() * 1e3 * 0.5 + 1.0);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch watch;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  const double before = watch.ElapsedSeconds();
  watch.Restart();
  EXPECT_LE(watch.ElapsedSeconds(), before + 1.0);
}

}  // namespace
}  // namespace csod
