#include "cs/rip.h"

#include <gtest/gtest.h>

namespace csod::cs {
namespace {

TEST(RipTest, ValidatesArguments) {
  MeasurementMatrix matrix(16, 64, 1);
  EXPECT_FALSE(EstimateRipConstant(matrix, 0, 10, 1).ok());
  EXPECT_FALSE(EstimateRipConstant(matrix, 65, 10, 1).ok());
  EXPECT_FALSE(EstimateRipConstant(matrix, 4, 0, 1).ok());
}

TEST(RipTest, GenerousMeasurementsGiveSmallDelta) {
  // M = 256 measurements for s = 4 sparse vectors out of N = 128: the
  // Gaussian ensemble is deeply in the RIP regime.
  MeasurementMatrix matrix(256, 128, 7);
  auto estimate = EstimateRipConstant(matrix, 4, 200, 3).MoveValue();
  EXPECT_LT(estimate.delta, 0.5);
  EXPECT_GT(estimate.min_ratio, 0.5);
  EXPECT_LT(estimate.max_ratio, 1.5);
  EXPECT_EQ(estimate.trials, 200u);
}

TEST(RipTest, DeltaGrowsWithSparsity) {
  // Fixing M, higher s distorts more (δ_s is non-decreasing in s; the
  // Monte Carlo probe reflects the trend).
  MeasurementMatrix matrix(64, 256, 11);
  auto small_s = EstimateRipConstant(matrix, 2, 300, 5).MoveValue();
  auto large_s = EstimateRipConstant(matrix, 32, 300, 5).MoveValue();
  EXPECT_LT(small_s.delta, large_s.delta);
}

TEST(RipTest, DeltaShrinksWithMeasurements) {
  MeasurementMatrix small_m(32, 256, 13);
  MeasurementMatrix large_m(512, 256, 13);
  auto coarse = EstimateRipConstant(small_m, 8, 200, 9).MoveValue();
  auto fine = EstimateRipConstant(large_m, 8, 200, 9).MoveValue();
  EXPECT_LT(fine.delta, coarse.delta);
}

TEST(RipTest, Deterministic) {
  MeasurementMatrix matrix(64, 128, 17);
  auto a = EstimateRipConstant(matrix, 6, 100, 21).MoveValue();
  auto b = EstimateRipConstant(matrix, 6, 100, 21).MoveValue();
  EXPECT_EQ(a.delta, b.delta);
  EXPECT_EQ(a.min_ratio, b.min_ratio);
  EXPECT_EQ(a.max_ratio, b.max_ratio);
}

}  // namespace
}  // namespace csod::cs
