// Cross-solver differential test (ISSUE 8 satellite): AMP and BOMP answer
// the same 20 seeded biased-recovery workloads and must agree within the
// tolerances each engine documents.
//
// Documented tolerances (the per-engine contracts under test):
//  - BOMP : EK == 0 and EV < 1e-6 relative once M is comfortably past the
//           sparsity (same contract differential_test.cc pins for the CS
//           protocol).
//  - AMP  : identical EK/EV contract in the same regime — the debias pass
//           re-solves least squares on the detected support, so once the
//           support is located the values match BOMP's least-squares
//           values to floating-point accuracy, NOT bit-for-bit (different
//           iteration path). Mode agreement within 1e-6 relative.
//
// The engines are intentionally compared through the common BompResult
// currency + KOutliersFromRecovery, i.e. exactly the path the Detector's
// `solver` option switches.

#include <cmath>
#include <random>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cs/amp.h"
#include "cs/bomp.h"
#include "cs/measurement_matrix.h"
#include "cs/solver.h"
#include "outlier/metrics.h"
#include "outlier/outlier.h"

namespace csod::cs {
namespace {

constexpr size_t kN = 400;
constexpr size_t kSparsity = 10;
constexpr size_t kK = 5;
constexpr size_t kM = 160;
constexpr double kMode = 5000.0;

struct Workload {
  std::vector<double> global;
  outlier::OutlierSet truth;
};

// Majority-dominated data with a well-separated same-sign divergence
// ladder — the regime where every engine carries an exactness contract.
Workload MakeWorkload(uint64_t seed) {
  std::mt19937_64 rng(seed * 7919 + 13);
  Workload w;
  w.global.assign(kN, kMode);
  std::uniform_int_distribution<size_t> pick_key(0, kN - 1);
  std::uniform_real_distribution<double> jitter(0.0, 500.0);
  size_t planted = 0;
  while (planted < kSparsity) {
    const size_t key = pick_key(rng);
    if (w.global[key] != kMode) continue;
    w.global[key] = kMode + 3000.0 * static_cast<double>(planted + 1) +
                    jitter(rng);
    ++planted;
  }
  w.truth = outlier::ExactKOutliers(w.global, kK);
  return w;
}

TEST(SolverDifferentialTest, AmpAgreesWithBompAcrossTwentySeededWorkloads) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Workload w = MakeWorkload(seed);
    MeasurementMatrix matrix(kM, kN, 100 + seed);
    auto y = matrix.Multiply(w.global).MoveValue();

    BompOptions bomp_options;
    bomp_options.max_iterations = kSparsity + 4;
    auto bomp = RunBomp(matrix, y, bomp_options).MoveValue();
    const outlier::OutlierSet bomp_topk =
        outlier::KOutliersFromRecovery(bomp, kK);

    auto amp = RunBiasedAmp(matrix, y, AmpOptions{}).MoveValue();
    const outlier::OutlierSet amp_topk =
        outlier::KOutliersFromRecovery(amp, kK);

    // Both engines nail the exact top-k keys...
    EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(w.truth, bomp_topk), 0.0);
    EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(w.truth, amp_topk), 0.0);
    // ...and their values to the documented relative tolerance.
    EXPECT_LT(outlier::ErrorOnValue(w.truth, bomp_topk), 1e-6);
    EXPECT_LT(outlier::ErrorOnValue(w.truth, amp_topk), 1e-6);
    // Cross-engine mode agreement (relative to the mode's scale).
    EXPECT_NEAR(amp.mode, bomp.mode, 1e-6 * kMode);

    // Same selection, key by key, after divergence ranking.
    ASSERT_EQ(amp_topk.outliers.size(), bomp_topk.outliers.size());
    for (size_t i = 0; i < amp_topk.outliers.size(); ++i) {
      EXPECT_EQ(amp_topk.outliers[i].key_index,
                bomp_topk.outliers[i].key_index);
      // Engine-to-engine value agreement: both are least-squares solves on
      // the same located support, so they differ only in conditioning.
      EXPECT_NEAR(amp_topk.outliers[i].value, bomp_topk.outliers[i].value,
                  1e-5 * std::fabs(bomp_topk.outliers[i].value));
    }
  }
}

TEST(SolverDifferentialTest, UnifiedBudgetMapsToEveryEngine) {
  const Workload w = MakeWorkload(3);
  MeasurementMatrix matrix(kM, kN, 77);
  auto y = matrix.Multiply(w.global).MoveValue();

  for (RecoverySolver solver :
       {RecoverySolver::kOmp, RecoverySolver::kCosamp, RecoverySolver::kFista,
        RecoverySolver::kAmp}) {
    SCOPED_TRACE(SolverName(solver));
    SolverOptions solve;
    solve.solver = solver;
    solve.iterations = kSparsity + 4;  // One R, four engines.
    auto result = RecoverBiased(matrix, y, solve);
    ASSERT_TRUE(result.ok());
    const outlier::OutlierSet topk =
        outlier::KOutliersFromRecovery(result.Value(), kK);
    EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(w.truth, topk), 0.0);
  }
}

}  // namespace
}  // namespace csod::cs
