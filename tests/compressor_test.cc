#include "cs/compressor.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "common/random.h"
#include "common/simd.h"
#include "cs/measurement_matrix.h"
#include "la/vector_ops.h"

namespace csod::cs {
namespace {

// Restores the global parallelism limit a test overrode.
class ScopedParallelismLimit {
 public:
  explicit ScopedParallelismLimit(size_t limit)
      : previous_(GetParallelismLimit()) {
    SetParallelismLimit(limit);
  }
  ~ScopedParallelismLimit() { SetParallelismLimit(previous_); }

 private:
  size_t previous_;
};

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::Level level)
      : previous_(simd::SetLevelForTesting(level)) {}
  ~ScopedSimdLevel() { simd::SetLevelForTesting(previous_); }

 private:
  simd::Level previous_;
};

TEST(SparseSliceTest, DenseRoundTrip) {
  std::vector<double> x = {0.0, 1.5, 0.0, -2.0, 0.0};
  SparseSlice slice = SparseSlice::FromDense(x);
  EXPECT_EQ(slice.nnz(), 2u);
  auto dense = slice.ToDense(5);
  ASSERT_TRUE(dense.ok());
  EXPECT_EQ(dense.Value(), x);
}

TEST(SparseSliceTest, ToDenseAccumulatesDuplicates) {
  SparseSlice slice;
  slice.indices = {1, 1, 2};
  slice.values = {2.0, 3.0, 1.0};
  auto dense = slice.ToDense(4);
  ASSERT_TRUE(dense.ok());
  EXPECT_EQ(dense.Value(), (std::vector<double>{0.0, 5.0, 1.0, 0.0}));
}

TEST(SparseSliceTest, ToDenseRejectsOutOfRange) {
  SparseSlice slice;
  slice.indices = {0, 9};
  slice.values = {1.0, 7.0};
  auto dense = slice.ToDense(2);
  ASSERT_FALSE(dense.ok());
  EXPECT_EQ(dense.status().code(), StatusCode::kOutOfRange);
}

TEST(SparseSliceTest, FromDenseReservesExactly) {
  std::vector<double> x(1000, 0.0);
  for (size_t i = 0; i < x.size(); i += 7) x[i] = double(i) + 1.0;
  SparseSlice slice = SparseSlice::FromDense(x);
  EXPECT_EQ(slice.nnz(), 143u);
  EXPECT_EQ(slice.indices.capacity(), slice.nnz());
  EXPECT_EQ(slice.values.capacity(), slice.nnz());
}

TEST(CompressorTest, SparseAndDensePathsAgree) {
  MeasurementMatrix matrix(16, 40, 11);
  Compressor compressor(&matrix);
  std::vector<double> x(40, 0.0);
  x[2] = 3.0;
  x[30] = -1.5;
  SparseSlice slice = SparseSlice::FromDense(x);
  auto dense = compressor.Compress(x);
  auto sparse = compressor.Compress(slice);
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(sparse.ok());
  EXPECT_NEAR(la::DistanceL2(dense.Value(), sparse.Value()), 0.0, 1e-12);
}

TEST(CompressorTest, LinearityAcrossSlices) {
  // Equation 1: Σ_l Φ0 x_l == Φ0 Σ_l x_l.
  const size_t n = 64;
  MeasurementMatrix matrix(24, n, 5);
  Compressor compressor(&matrix);

  Rng rng(3);
  std::vector<std::vector<double>> slices(4, std::vector<double>(n, 0.0));
  std::vector<double> global(n, 0.0);
  for (auto& slice : slices) {
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextDouble() < 0.3) {
        slice[i] = rng.NextGaussian() * 100.0;
        global[i] += slice[i];
      }
    }
  }

  std::vector<std::vector<double>> measurements;
  for (const auto& slice : slices) {
    auto y = compressor.Compress(slice);
    ASSERT_TRUE(y.ok());
    measurements.push_back(y.MoveValue());
  }
  auto aggregated = Compressor::AggregateMeasurements(measurements);
  auto direct = compressor.Compress(global);
  ASSERT_TRUE(aggregated.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_LT(la::DistanceL2(aggregated.Value(), direct.Value()), 1e-9);
}

TEST(CompressorTest, AggregateErrors) {
  EXPECT_FALSE(Compressor::AggregateMeasurements({}).ok());
  EXPECT_FALSE(
      Compressor::AggregateMeasurements({{1.0, 2.0}, {1.0}}).ok());
}

TEST(CompressorTest, MeasurementSize) {
  MeasurementMatrix matrix(7, 20, 1);
  Compressor compressor(&matrix);
  EXPECT_EQ(compressor.measurement_size(), 7u);
}

// Builds a cluster-shaped batch that exercises every tricky case at once:
// an empty slice, explicit zero values, duplicate indices within one slice,
// and one slice large enough to span multiple reduction blocks.
std::vector<SparseSlice> MakeBatch(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<SparseSlice> slices(6);
  // slices[0] stays empty (a node that saw no events).
  for (size_t l = 1; l < slices.size(); ++l) {
    const size_t nnz = (l == 3) ? 1300 : 20 + 10 * l;  // slice 3: 3 blocks.
    for (size_t k = 0; k < nnz; ++k) {
      slices[l].indices.push_back(size_t(rng.NextDouble() * double(n)) % n);
      slices[l].values.push_back(
          (k % 17 == 0) ? 0.0 : rng.NextGaussian() * 50.0);
    }
  }
  // Duplicate indices inside one slice (a pre-aggregation node).
  slices[2].indices.push_back(slices[2].indices.front());
  slices[2].values.push_back(4.25);
  return slices;
}

// The per-node reference: Compress each slice, then AggregateMeasurements.
std::vector<double> PerNodeReference(const Compressor& compressor,
                                     const std::vector<SparseSlice>& slices) {
  std::vector<std::vector<double>> measurements;
  for (const auto& slice : slices) {
    auto y = compressor.Compress(slice);
    EXPECT_TRUE(y.ok());
    measurements.push_back(y.MoveValue());
  }
  auto y = Compressor::AggregateMeasurements(measurements);
  EXPECT_TRUE(y.ok());
  return y.MoveValue();
}

TEST(CompressorTest, CompressAccumulateMatchesPerNodeAggregateBitwise) {
  const size_t n = 4000;
  const std::vector<SparseSlice> slices = MakeBatch(n, 77);
  // Cached and implicit matrices must both match their per-node paths.
  for (size_t budget : {size_t{1} << 24, size_t{0}}) {
    MeasurementMatrix matrix(64, n, 9, budget);
    Compressor compressor(&matrix);
    const std::vector<double> reference = PerNodeReference(compressor, slices);
    std::vector<double> batched;
    ASSERT_TRUE(compressor.CompressAccumulate(slices, &batched).ok());
    EXPECT_EQ(batched, reference) << "budget=" << budget;
  }
}

TEST(CompressorTest, CompressAccumulateBitIdenticalAcrossLimitsAndLevels) {
  const size_t n = 4000;
  const std::vector<SparseSlice> slices = MakeBatch(n, 31);
  for (size_t budget : {size_t{1} << 24, size_t{0}}) {
    MeasurementMatrix matrix(64, n, 9, budget);
    Compressor compressor(&matrix);

    // Reference: serial, portable SIMD, per-node path.
    std::vector<double> reference;
    {
      ScopedParallelismLimit serial(1);
      ScopedSimdLevel portable(simd::Level::kPortable);
      reference = PerNodeReference(compressor, slices);
    }

    for (size_t limit : {size_t{1}, size_t{2}, size_t{8}}) {
      for (simd::Level level : {simd::Level::kPortable, simd::Level::kAvx2}) {
        ScopedParallelismLimit scoped_limit(limit);
        ScopedSimdLevel scoped_level(level);
        std::vector<double> batched;
        ASSERT_TRUE(compressor.CompressAccumulate(slices, &batched).ok());
        EXPECT_EQ(batched, reference)
            << "budget=" << budget << " limit=" << limit
            << " level=" << simd::LevelName(simd::ActiveLevel());
      }
    }
  }
}

TEST(CompressorTest, CompressAccumulateEmptyBatchYieldsZeros) {
  MeasurementMatrix matrix(12, 50, 3);
  Compressor compressor(&matrix);
  std::vector<double> y = {9.0};  // Pre-filled garbage must be overwritten.
  ASSERT_TRUE(
      compressor.CompressAccumulate(std::vector<SparseSlice>{}, &y).ok());
  EXPECT_EQ(y, std::vector<double>(12, 0.0));

  // A batch of only-empty slices is equivalent to an empty batch.
  ASSERT_TRUE(
      compressor.CompressAccumulate(std::vector<SparseSlice>(3), &y).ok());
  EXPECT_EQ(y, std::vector<double>(12, 0.0));
}

TEST(CompressorTest, CompressAccumulateRejectsOutOfRange) {
  MeasurementMatrix matrix(12, 50, 3);
  Compressor compressor(&matrix);
  std::vector<SparseSlice> slices(2);
  slices[1].indices = {50};
  slices[1].values = {1.0};
  std::vector<double> y;
  Status status = compressor.CompressAccumulate(slices, &y);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
}

TEST(CompressorTest, CompressEachMatchesPerSliceCompressBitwise) {
  const size_t n = 4000;
  const std::vector<SparseSlice> slices = MakeBatch(n, 13);
  std::vector<const SparseSlice*> views;
  for (const auto& slice : slices) views.push_back(&slice);
  for (size_t budget : {size_t{1} << 24, size_t{0}}) {
    MeasurementMatrix matrix(64, n, 9, budget);
    Compressor compressor(&matrix);
    auto each = compressor.CompressEach(views);
    ASSERT_TRUE(each.ok());
    ASSERT_EQ(each.Value().size(), slices.size());
    for (size_t l = 0; l < slices.size(); ++l) {
      auto y = compressor.Compress(slices[l]);
      ASSERT_TRUE(y.ok());
      EXPECT_EQ(each.Value()[l], y.Value()) << "budget=" << budget
                                            << " slice=" << l;
    }
  }
}

}  // namespace
}  // namespace csod::cs
