#include "cs/compressor.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "cs/measurement_matrix.h"
#include "la/vector_ops.h"

namespace csod::cs {
namespace {

TEST(SparseSliceTest, DenseRoundTrip) {
  std::vector<double> x = {0.0, 1.5, 0.0, -2.0, 0.0};
  SparseSlice slice = SparseSlice::FromDense(x);
  EXPECT_EQ(slice.nnz(), 2u);
  EXPECT_EQ(slice.ToDense(5), x);
}

TEST(SparseSliceTest, ToDenseAccumulatesDuplicates) {
  SparseSlice slice;
  slice.indices = {1, 1, 2};
  slice.values = {2.0, 3.0, 1.0};
  const std::vector<double> dense = slice.ToDense(4);
  EXPECT_EQ(dense, (std::vector<double>{0.0, 5.0, 1.0, 0.0}));
}

TEST(SparseSliceTest, ToDenseIgnoresOutOfRange) {
  SparseSlice slice;
  slice.indices = {0, 9};
  slice.values = {1.0, 7.0};
  const std::vector<double> dense = slice.ToDense(2);
  EXPECT_EQ(dense, (std::vector<double>{1.0, 0.0}));
}

TEST(CompressorTest, SparseAndDensePathsAgree) {
  MeasurementMatrix matrix(16, 40, 11);
  Compressor compressor(&matrix);
  std::vector<double> x(40, 0.0);
  x[2] = 3.0;
  x[30] = -1.5;
  SparseSlice slice = SparseSlice::FromDense(x);
  auto dense = compressor.Compress(x);
  auto sparse = compressor.Compress(slice);
  ASSERT_TRUE(dense.ok());
  ASSERT_TRUE(sparse.ok());
  EXPECT_NEAR(la::DistanceL2(dense.Value(), sparse.Value()), 0.0, 1e-12);
}

TEST(CompressorTest, LinearityAcrossSlices) {
  // Equation 1: Σ_l Φ0 x_l == Φ0 Σ_l x_l.
  const size_t n = 64;
  MeasurementMatrix matrix(24, n, 5);
  Compressor compressor(&matrix);

  Rng rng(3);
  std::vector<std::vector<double>> slices(4, std::vector<double>(n, 0.0));
  std::vector<double> global(n, 0.0);
  for (auto& slice : slices) {
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextDouble() < 0.3) {
        slice[i] = rng.NextGaussian() * 100.0;
        global[i] += slice[i];
      }
    }
  }

  std::vector<std::vector<double>> measurements;
  for (const auto& slice : slices) {
    auto y = compressor.Compress(slice);
    ASSERT_TRUE(y.ok());
    measurements.push_back(y.MoveValue());
  }
  auto aggregated = Compressor::AggregateMeasurements(measurements);
  auto direct = compressor.Compress(global);
  ASSERT_TRUE(aggregated.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_LT(la::DistanceL2(aggregated.Value(), direct.Value()), 1e-9);
}

TEST(CompressorTest, AggregateErrors) {
  EXPECT_FALSE(Compressor::AggregateMeasurements({}).ok());
  EXPECT_FALSE(
      Compressor::AggregateMeasurements({{1.0, 2.0}, {1.0}}).ok());
}

TEST(CompressorTest, MeasurementSize) {
  MeasurementMatrix matrix(7, 20, 1);
  Compressor compressor(&matrix);
  EXPECT_EQ(compressor.measurement_size(), 7u);
}

}  // namespace
}  // namespace csod::cs
