#include "cs/bomp.h"

#include <cmath>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "cs/measurement_matrix.h"
#include "la/vector_ops.h"

namespace csod::cs {
namespace {

// Biased s-sparse vector: mode b everywhere except `outliers` positions.
std::vector<double> BiasedSparse(size_t n, double b,
                                 const std::vector<size_t>& positions,
                                 const std::vector<double>& values) {
  std::vector<double> x(n, b);
  for (size_t i = 0; i < positions.size(); ++i) x[positions[i]] = values[i];
  return x;
}

TEST(BompTest, RejectsZeroIterations) {
  MeasurementMatrix matrix(8, 16, 1);
  std::vector<double> y(8, 1.0);
  BompOptions options;
  EXPECT_FALSE(RunBomp(matrix, y, options).ok());
  EXPECT_FALSE(RecoverWithKnownMode(matrix, y, 0.0, options).ok());
}

TEST(BompTest, DefaultIterationsMatchesPaperRange) {
  // R = f(k) in [2k, 5k] (Section 5), floored for tiny k.
  for (size_t k : {5u, 10u, 20u, 100u}) {
    const size_t r = DefaultIterationsForK(k);
    EXPECT_GE(r, 2 * k) << "k=" << k;
    EXPECT_LE(r, 5 * k) << "k=" << k;
  }
  EXPECT_GE(DefaultIterationsForK(1), 8u);
}

TEST(BompTest, RecoversBiasAndOutliersExactly) {
  const size_t n = 256;
  const double b = 5000.0;  // The paper's synthetic mode.
  const std::vector<size_t> positions = {10, 100, 200};
  const std::vector<double> values = {9000.0, -2000.0, 12000.0};
  std::vector<double> x = BiasedSparse(n, b, positions, values);

  MeasurementMatrix matrix(96, n, 5);
  auto y = matrix.Multiply(x);
  ASSERT_TRUE(y.ok());

  BompOptions options;
  options.max_iterations = 10;
  auto result = RunBomp(matrix, y.Value(), options);
  ASSERT_TRUE(result.ok());
  const BompResult& r = result.Value();

  EXPECT_TRUE(r.bias_selected);
  EXPECT_NEAR(r.mode, b, 1e-5);

  std::set<size_t> planted(positions.begin(), positions.end());
  std::set<size_t> recovered;
  for (const auto& e : r.entries) recovered.insert(e.index);
  // All planted outliers recovered (the recovery may carry a few
  // negligible extra entries from later iterations).
  for (size_t p : planted) EXPECT_TRUE(recovered.count(p)) << "missing " << p;
  for (const auto& e : r.entries) {
    EXPECT_NEAR(e.value, x[e.index], 1e-4) << "index " << e.index;
  }
}

TEST(BompTest, MaterializeReconstructsVector) {
  const size_t n = 128;
  const double b = 1800.0;  // Figure 1(a)'s mode.
  std::vector<double> x = BiasedSparse(n, b, {5, 60}, {40000.0, -35000.0});

  MeasurementMatrix matrix(64, n, 9);
  auto y = matrix.Multiply(x);
  ASSERT_TRUE(y.ok());

  BompOptions options;
  options.max_iterations = 8;
  auto result = RunBomp(matrix, y.Value(), options);
  ASSERT_TRUE(result.ok());
  std::vector<double> reconstructed = result.Value().Materialize(n);
  ASSERT_EQ(reconstructed.size(), n);
  EXPECT_LT(la::DistanceL2(reconstructed, x) / la::Norm2(x), 1e-6);
}

TEST(BompTest, ZeroModeDataStillRecovered) {
  // Sparse-at-zero data: BOMP degenerates gracefully (bias coefficient ~0
  // or unselected) and still finds the components.
  const size_t n = 200;
  std::vector<double> x(n, 0.0);
  x[7] = 300.0;
  x[120] = -500.0;

  MeasurementMatrix matrix(48, n, 13);
  auto y = matrix.Multiply(x);
  ASSERT_TRUE(y.ok());

  BompOptions options;
  options.max_iterations = 8;
  auto result = RunBomp(matrix, y.Value(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.Value().mode, 0.0, 1.0);
  std::vector<double> reconstructed = result.Value().Materialize(n);
  EXPECT_LT(la::DistanceL2(reconstructed, x) / la::Norm2(x), 1e-3);
}

TEST(BompTest, ModeTraceStabilizesAfterSparsityIterations) {
  // Figure 4(b): the bias estimate stabilizes once the s outliers are
  // picked up (iteration s + 1).
  const size_t n = 400;
  const size_t s = 8;
  const double b = 5000.0;
  Rng rng(3);
  std::vector<double> x(n, b);
  std::set<size_t> planted;
  while (planted.size() < s) planted.insert(rng.NextBounded(n));
  for (size_t p : planted) {
    x[p] = b + (rng.NextDouble() + 0.5) * 8000.0 *
                   ((rng.NextU64() & 1) ? 1.0 : -1.0);
  }

  MeasurementMatrix matrix(160, n, 21);
  auto y = matrix.Multiply(x);
  ASSERT_TRUE(y.ok());

  BompOptions options;
  options.max_iterations = 2 * s + 4;
  options.record_mode_trace = true;
  auto result = RunBomp(matrix, y.Value(), options);
  ASSERT_TRUE(result.ok());
  const auto& trace = result.Value().mode_trace;
  ASSERT_GE(trace.size(), s + 1);
  // After iteration s+1 the estimate must sit at b.
  for (size_t i = s; i < trace.size(); ++i) {
    EXPECT_NEAR(trace[i], b, 1.0) << "iteration " << i + 1;
  }
}

TEST(BompTest, KnownModeMatchesBompOnBiasedData) {
  // Figure 4(a)'s comparison: OMP with the mode known in advance should
  // recover the same outliers BOMP finds without knowing it.
  const size_t n = 256;
  const double b = 5000.0;
  const std::vector<size_t> positions = {3, 77, 199, 240};
  const std::vector<double> values = {15000.0, -3000.0, 9999.0, 1.0};
  std::vector<double> x = BiasedSparse(n, b, positions, values);

  MeasurementMatrix matrix(128, n, 33);
  auto y = matrix.Multiply(x);
  ASSERT_TRUE(y.ok());

  BompOptions options;
  options.max_iterations = 12;

  auto bomp = RunBomp(matrix, y.Value(), options);
  auto known = RecoverWithKnownMode(matrix, y.Value(), b, options);
  ASSERT_TRUE(bomp.ok());
  ASSERT_TRUE(known.ok());
  EXPECT_NEAR(known.Value().mode, b, 0.0);
  EXPECT_FALSE(known.Value().bias_selected);

  std::vector<double> xa = bomp.Value().Materialize(n);
  std::vector<double> xb = known.Value().Materialize(n);
  EXPECT_LT(la::DistanceL2(xa, x) / la::Norm2(x), 1e-5);
  EXPECT_LT(la::DistanceL2(xb, x) / la::Norm2(x), 1e-5);
}

TEST(BompTest, EntriesBoundedByIterations) {
  // Section 3.2: the recovered x has at most R - 1 non-mode components.
  const size_t n = 300;
  Rng rng(8);
  std::vector<double> x(n, 100.0);
  for (int i = 0; i < 50; ++i) x[rng.NextBounded(n)] += rng.NextGaussian() * 500.0;

  MeasurementMatrix matrix(80, n, 44);
  auto y = matrix.Multiply(x);
  ASSERT_TRUE(y.ok());

  BompOptions options;
  options.max_iterations = 6;
  auto result = RunBomp(matrix, y.Value(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.Value().entries.size(), options.max_iterations - 1);
}

// Property sweep: exact recovery across (n, s, b) combinations with
// generous M.
class BompRecoveryTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, double>> {};

TEST_P(BompRecoveryTest, ExactRecovery) {
  const auto [n, s, b] = GetParam();
  const size_t m = std::min<size_t>(
      n,
      static_cast<size_t>(4.0 * (s + 1) * std::log(static_cast<double>(n))) +
          16);
  MeasurementMatrix matrix(m, n, 1234 + n + s);
  Rng rng(n * 7 + s);
  std::vector<double> x(n, b);
  std::set<size_t> planted;
  while (planted.size() < s) planted.insert(rng.NextBounded(n));
  for (size_t p : planted) {
    x[p] = b + (rng.NextDouble() + 0.2) * 10000.0 *
                   ((rng.NextU64() & 1) ? 1.0 : -1.0);
  }
  auto y = matrix.Multiply(x);
  ASSERT_TRUE(y.ok());

  BompOptions options;
  options.max_iterations = s + 3;
  auto result = RunBomp(matrix, y.Value(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.Value().mode, b, std::fabs(b) * 1e-6 + 1e-3);
  std::vector<double> reconstructed = result.Value().Materialize(n);
  EXPECT_LT(la::DistanceL2(reconstructed, x) / la::Norm2(x), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BompRecoveryTest,
    ::testing::Values(std::make_tuple(128, 4, 5000.0),
                      std::make_tuple(256, 8, 5000.0),
                      std::make_tuple(256, 8, -250.0),
                      std::make_tuple(512, 16, 1800.0),
                      std::make_tuple(1000, 25, 7.5),
                      std::make_tuple(400, 12, 100000.0)));

}  // namespace
}  // namespace csod::cs
