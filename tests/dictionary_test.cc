#include "cs/dictionary.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "la/vector_ops.h"

namespace csod::cs {
namespace {

TEST(MatrixDictionaryTest, MirrorsMatrix) {
  MeasurementMatrix matrix(6, 10, 3);
  MatrixDictionary dict(&matrix);
  EXPECT_EQ(dict.num_atoms(), 10u);
  EXPECT_EQ(dict.atom_length(), 6u);
  for (size_t j = 0; j < 10; ++j) {
    EXPECT_EQ(dict.Atom(j), matrix.Column(j));
  }
}

TEST(MatrixDictionaryTest, CorrelateAndMultiplyMatchMatrix) {
  MeasurementMatrix matrix(6, 10, 3);
  MatrixDictionary dict(&matrix);
  Rng rng(7);
  std::vector<double> r(6);
  for (double& v : r) v = rng.NextGaussian();
  EXPECT_EQ(dict.Correlate(r).Value(), matrix.CorrelateAll(r).Value());

  std::vector<double> z(10);
  for (double& v : z) v = rng.NextGaussian();
  EXPECT_EQ(dict.MultiplyDense(z).Value(), matrix.Multiply(z).Value());
}

TEST(ExtendedDictionaryTest, AtomZeroIsBiasColumn) {
  MeasurementMatrix matrix(8, 12, 5);
  ExtendedDictionary dict(&matrix);
  EXPECT_EQ(dict.num_atoms(), 13u);
  EXPECT_EQ(dict.Atom(0), matrix.BiasColumn());
  for (size_t j = 1; j < 13; ++j) {
    EXPECT_EQ(dict.Atom(j), matrix.Column(j - 1));
  }
}

TEST(ExtendedDictionaryTest, CorrelatePrependsBiasCorrelation) {
  MeasurementMatrix matrix(8, 12, 5);
  ExtendedDictionary dict(&matrix);
  Rng rng(9);
  std::vector<double> r(8);
  for (double& v : r) v = rng.NextGaussian();
  auto c = dict.Correlate(r).MoveValue();
  ASSERT_EQ(c.size(), 13u);
  EXPECT_NEAR(c[0], la::Dot(matrix.BiasColumn(), r), 1e-12);
  auto base = matrix.CorrelateAll(r).MoveValue();
  for (size_t j = 0; j < 12; ++j) EXPECT_EQ(c[j + 1], base[j]);
}

TEST(ExtendedDictionaryTest, MultiplyDenseMatchesAtomSum) {
  MeasurementMatrix matrix(8, 12, 5);
  ExtendedDictionary dict(&matrix);
  Rng rng(11);
  std::vector<double> z(13);
  for (double& v : z) v = rng.NextGaussian();

  auto fast = dict.MultiplyDense(z).MoveValue();
  std::vector<double> manual(8, 0.0);
  for (size_t j = 0; j < 13; ++j) {
    la::Axpy(z[j], dict.Atom(j), &manual);
  }
  EXPECT_LT(la::DistanceL2(fast, manual), 1e-10);
}

TEST(ExtendedDictionaryTest, MultiplyDenseSizeChecked) {
  MeasurementMatrix matrix(8, 12, 5);
  ExtendedDictionary dict(&matrix);
  EXPECT_FALSE(dict.MultiplyDense(std::vector<double>(12, 1.0)).ok());
}

TEST(ExtendedDictionaryTest, MeasurementIdentity) {
  // Equation 2: Φ0(b·1 + z) == [φ0, Φ0]·[√N b, z].
  const size_t n = 12;
  const double b = 7.5;
  MeasurementMatrix matrix(8, n, 5);
  ExtendedDictionary dict(&matrix);

  Rng rng(13);
  std::vector<double> z(n, 0.0);
  z[2] = 3.0;
  z[9] = -1.0;

  std::vector<double> x(n, b);
  for (size_t i = 0; i < n; ++i) x[i] += z[i];
  auto y_direct = matrix.Multiply(x).MoveValue();

  std::vector<double> extended(n + 1);
  extended[0] = std::sqrt(static_cast<double>(n)) * b;
  for (size_t i = 0; i < n; ++i) extended[i + 1] = z[i];
  auto y_extended = dict.MultiplyDense(extended).MoveValue();

  EXPECT_LT(la::DistanceL2(y_direct, y_extended), 1e-9);
}

}  // namespace
}  // namespace csod::cs
