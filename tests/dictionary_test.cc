#include "cs/dictionary.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "la/vector_ops.h"

namespace csod::cs {
namespace {

TEST(MatrixDictionaryTest, MirrorsMatrix) {
  MeasurementMatrix matrix(6, 10, 3);
  MatrixDictionary dict(&matrix);
  EXPECT_EQ(dict.num_atoms(), 10u);
  EXPECT_EQ(dict.atom_length(), 6u);
  for (size_t j = 0; j < 10; ++j) {
    EXPECT_EQ(dict.Atom(j), matrix.Column(j));
  }
}

TEST(MatrixDictionaryTest, CorrelateAndMultiplyMatchMatrix) {
  MeasurementMatrix matrix(6, 10, 3);
  MatrixDictionary dict(&matrix);
  Rng rng(7);
  std::vector<double> r(6);
  for (double& v : r) v = rng.NextGaussian();
  EXPECT_EQ(dict.Correlate(r).Value(), matrix.CorrelateAll(r).Value());

  std::vector<double> z(10);
  for (double& v : z) v = rng.NextGaussian();
  EXPECT_EQ(dict.MultiplyDense(z).Value(), matrix.Multiply(z).Value());
}

TEST(ExtendedDictionaryTest, AtomZeroIsBiasColumn) {
  MeasurementMatrix matrix(8, 12, 5);
  ExtendedDictionary dict(&matrix);
  EXPECT_EQ(dict.num_atoms(), 13u);
  EXPECT_EQ(dict.Atom(0), matrix.BiasColumn());
  for (size_t j = 1; j < 13; ++j) {
    EXPECT_EQ(dict.Atom(j), matrix.Column(j - 1));
  }
}

TEST(ExtendedDictionaryTest, CorrelatePrependsBiasCorrelation) {
  MeasurementMatrix matrix(8, 12, 5);
  ExtendedDictionary dict(&matrix);
  Rng rng(9);
  std::vector<double> r(8);
  for (double& v : r) v = rng.NextGaussian();
  auto c = dict.Correlate(r).MoveValue();
  ASSERT_EQ(c.size(), 13u);
  EXPECT_NEAR(c[0], la::Dot(matrix.BiasColumn(), r), 1e-12);
  auto base = matrix.CorrelateAll(r).MoveValue();
  for (size_t j = 0; j < 12; ++j) EXPECT_EQ(c[j + 1], base[j]);
}

TEST(MatrixDictionaryTest, CorrelateArgmaxMatchesCorrelateScan) {
  MeasurementMatrix matrix(6, 10, 3);
  MatrixDictionary dict(&matrix);
  Rng rng(17);
  std::vector<double> r(6);
  for (double& v : r) v = rng.NextGaussian();
  std::vector<bool> mask(10, false);
  for (size_t round = 0; round < 5; ++round) {
    auto c = dict.Correlate(r).MoveValue();
    size_t expected = CorrelateArgmaxResult::kNoIndex;
    double best_abs = -1.0;
    for (size_t j = 0; j < c.size(); ++j) {
      if (mask[j]) continue;
      if (std::fabs(c[j]) > best_abs) {
        best_abs = std::fabs(c[j]);
        expected = j;
      }
    }
    auto pick = dict.CorrelateArgmax(r, mask).MoveValue();
    EXPECT_EQ(pick.index, expected);
    EXPECT_EQ(pick.abs_correlation, best_abs);  // Bitwise.
    mask[pick.index] = true;
  }
}

TEST(ExtendedDictionaryTest, CorrelateArgmaxMatchesCorrelateScan) {
  MeasurementMatrix matrix(8, 12, 5);
  ExtendedDictionary dict(&matrix);
  Rng rng(23);
  std::vector<double> r(8);
  for (double& v : r) v = rng.NextGaussian();
  // Peel atoms one at a time (the OMP access pattern) so the bias atom is
  // exercised both unmasked and masked.
  std::vector<bool> mask(13, false);
  for (size_t round = 0; round < 6; ++round) {
    auto c = dict.Correlate(r).MoveValue();
    size_t expected = CorrelateArgmaxResult::kNoIndex;
    double best_abs = -1.0;
    for (size_t j = 0; j < c.size(); ++j) {
      if (mask[j]) continue;
      if (std::fabs(c[j]) > best_abs) {
        best_abs = std::fabs(c[j]);
        expected = j;
      }
    }
    auto pick = dict.CorrelateArgmax(r, mask).MoveValue();
    EXPECT_EQ(pick.index, expected) << "round " << round;
    EXPECT_EQ(pick.abs_correlation, best_abs);  // Bitwise.
    mask[pick.index] = true;
  }
}

TEST(ExtendedDictionaryTest, CorrelateArgmaxZeroResidualPicksBias) {
  MeasurementMatrix matrix(8, 12, 5);
  ExtendedDictionary dict(&matrix);
  // All 13 correlations tie at 0.0; the bias atom (index 0) must win.
  const std::vector<double> zero(8, 0.0);
  std::vector<bool> mask(13, false);
  auto pick = dict.CorrelateArgmax(zero, mask).MoveValue();
  EXPECT_EQ(pick.index, 0u);
  EXPECT_EQ(pick.abs_correlation, 0.0);
  // With the bias masked the tie falls to the first data atom.
  mask[0] = true;
  pick = dict.CorrelateArgmax(zero, mask).MoveValue();
  EXPECT_EQ(pick.index, 1u);
}

TEST(ExtendedDictionaryTest, CorrelateArgmaxMaskSizeChecked) {
  MeasurementMatrix matrix(8, 12, 5);
  ExtendedDictionary dict(&matrix);
  std::vector<double> r(8, 1.0);
  EXPECT_FALSE(dict.CorrelateArgmax(r, std::vector<bool>(12, false)).ok());
}

TEST(ExtendedDictionaryTest, MultiplyDenseMatchesAtomSum) {
  MeasurementMatrix matrix(8, 12, 5);
  ExtendedDictionary dict(&matrix);
  Rng rng(11);
  std::vector<double> z(13);
  for (double& v : z) v = rng.NextGaussian();

  auto fast = dict.MultiplyDense(z).MoveValue();
  std::vector<double> manual(8, 0.0);
  for (size_t j = 0; j < 13; ++j) {
    la::Axpy(z[j], dict.Atom(j), &manual);
  }
  EXPECT_LT(la::DistanceL2(fast, manual), 1e-10);
}

TEST(ExtendedDictionaryTest, MultiplyDenseSizeChecked) {
  MeasurementMatrix matrix(8, 12, 5);
  ExtendedDictionary dict(&matrix);
  EXPECT_FALSE(dict.MultiplyDense(std::vector<double>(12, 1.0)).ok());
}

TEST(ExtendedDictionaryTest, MeasurementIdentity) {
  // Equation 2: Φ0(b·1 + z) == [φ0, Φ0]·[√N b, z].
  const size_t n = 12;
  const double b = 7.5;
  MeasurementMatrix matrix(8, n, 5);
  ExtendedDictionary dict(&matrix);

  Rng rng(13);
  std::vector<double> z(n, 0.0);
  z[2] = 3.0;
  z[9] = -1.0;

  std::vector<double> x(n, b);
  for (size_t i = 0; i < n; ++i) x[i] += z[i];
  auto y_direct = matrix.Multiply(x).MoveValue();

  std::vector<double> extended(n + 1);
  extended[0] = std::sqrt(static_cast<double>(n)) * b;
  for (size_t i = 0; i < n; ++i) extended[i + 1] = z[i];
  auto y_extended = dict.MultiplyDense(extended).MoveValue();

  EXPECT_LT(la::DistanceL2(y_direct, y_extended), 1e-9);
}

}  // namespace
}  // namespace csod::cs
