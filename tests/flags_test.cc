#include "common/flags.h"

#include <vector>

#include <gtest/gtest.h>

namespace csod {
namespace {

FlagParser ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  FlagParser parser;
  EXPECT_TRUE(
      parser
          .Parse(static_cast<int>(args.size()),
                 const_cast<char**>(const_cast<const char**>(args.data())))
          .ok());
  return parser;
}

TEST(FlagsTest, EqualsForm) {
  FlagParser p = ParseArgs({"--m=400", "--alpha=0.9", "--name=test"});
  EXPECT_EQ(p.GetInt("m", 0), 400);
  EXPECT_DOUBLE_EQ(p.GetDouble("alpha", 0.0), 0.9);
  EXPECT_EQ(p.GetString("name", ""), "test");
}

TEST(FlagsTest, SpaceForm) {
  FlagParser p = ParseArgs({"--trials", "30"});
  EXPECT_EQ(p.GetInt("trials", 0), 30);
}

TEST(FlagsTest, BareBoolean) {
  FlagParser p = ParseArgs({"--quick"});
  EXPECT_TRUE(p.GetBool("quick", false));
  EXPECT_TRUE(p.Has("quick"));
  EXPECT_FALSE(p.Has("slow"));
}

TEST(FlagsTest, FallbacksWhenAbsent) {
  FlagParser p = ParseArgs({});
  EXPECT_EQ(p.GetInt("m", 123), 123);
  EXPECT_DOUBLE_EQ(p.GetDouble("x", 2.5), 2.5);
  EXPECT_EQ(p.GetString("s", "dft"), "dft");
  EXPECT_FALSE(p.GetBool("b", false));
  EXPECT_TRUE(p.GetBool("b", true));
}

TEST(FlagsTest, IntList) {
  FlagParser p = ParseArgs({"--m=100,200,300"});
  const std::vector<int64_t> expected = {100, 200, 300};
  EXPECT_EQ(p.GetIntList("m", {}), expected);
  const std::vector<int64_t> fallback = {1, 2};
  EXPECT_EQ(p.GetIntList("absent", fallback), fallback);
}

TEST(FlagsTest, PositionalArguments) {
  FlagParser p = ParseArgs({"input.txt", "--k=5", "more"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.txt");
  EXPECT_EQ(p.positional()[1], "more");
  EXPECT_EQ(p.GetInt("k", 0), 5);
}

TEST(FlagsTest, BoolSpellings) {
  FlagParser p = ParseArgs({"--a=true", "--b=1", "--c=yes", "--d=false"});
  EXPECT_TRUE(p.GetBool("a", false));
  EXPECT_TRUE(p.GetBool("b", false));
  EXPECT_TRUE(p.GetBool("c", false));
  EXPECT_FALSE(p.GetBool("d", true));
}

}  // namespace
}  // namespace csod
