#include "dist/adaptive_cs_protocol.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "dist/cs_protocol.h"
#include "outlier/metrics.h"
#include "workload/generators.h"
#include "workload/partitioner.h"

namespace csod::dist {
namespace {

struct TestCluster {
  std::vector<double> global;
  std::unique_ptr<Cluster> cluster;
  outlier::OutlierSet truth;
};

TestCluster MakeSetup(size_t n, size_t s, size_t k, uint64_t seed) {
  workload::MajorityDominatedOptions gen;
  gen.n = n;
  gen.sparsity = s;
  gen.seed = seed;
  TestCluster setup;
  setup.global = workload::GenerateMajorityDominated(gen).MoveValue();

  workload::PartitionOptions part;
  part.num_nodes = 6;
  part.strategy = workload::PartitionStrategy::kSkewedSplit;
  part.seed = seed + 1;
  auto slices = workload::PartitionAdditive(setup.global, part).MoveValue();
  setup.cluster = std::make_unique<Cluster>(n);
  for (auto& slice : slices) {
    EXPECT_TRUE(setup.cluster->AddNode(std::move(slice)).ok());
  }
  setup.truth = outlier::ExactKOutliers(setup.global, k);
  return setup;
}

TEST(AdaptiveProtocolTest, ValidatesOptions) {
  Cluster cluster(10);
  ASSERT_TRUE(cluster.AddNode({}).ok());
  CommStats comm;

  AdaptiveCsOptions bad;
  bad.initial_m = 0;
  EXPECT_FALSE(AdaptiveCsProtocol(bad).Run(cluster, 3, &comm).ok());
  bad.initial_m = 64;
  bad.max_m = 32;
  EXPECT_FALSE(AdaptiveCsProtocol(bad).Run(cluster, 3, &comm).ok());
  bad.max_m = 128;
  bad.growth = 1.0;
  EXPECT_FALSE(AdaptiveCsProtocol(bad).Run(cluster, 3, &comm).ok());
  bad.growth = 2.0;
  EXPECT_FALSE(AdaptiveCsProtocol(bad).Run(cluster, 3, nullptr).ok());
  Cluster empty(10);
  EXPECT_FALSE(AdaptiveCsProtocol(bad).Run(empty, 3, &comm).ok());
}

TEST(AdaptiveProtocolTest, ConvergesToExactAnswer) {
  const size_t k = 5;
  TestCluster setup = MakeSetup(1000, 15, k, 3);

  AdaptiveCsOptions options;
  options.initial_m = 32;
  options.max_m = 1024;
  options.seed = 7;
  options.iterations = 20;  // Past the sparsity: residual criterion fires.
  AdaptiveCsProtocol protocol(options);
  CommStats comm;
  auto result = protocol.Run(*setup.cluster, k, &comm).MoveValue();

  EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(setup.truth, result), 0.0);
  ASSERT_FALSE(protocol.rounds().empty());
  EXPECT_TRUE(protocol.rounds().back().accepted);
  // Multiple rounds, geometric M.
  EXPECT_EQ(comm.rounds(), protocol.rounds().size());
}

TEST(AdaptiveProtocolTest, IncrementalAccountingMatchesFinalM) {
  // Total tuples shipped per node equal the final M (prefix rows are
  // never retransmitted), so the adaptive run costs the same bytes as a
  // single-round run at the final M.
  const size_t k = 5;
  TestCluster setup = MakeSetup(800, 10, k, 9);

  AdaptiveCsOptions options;
  options.initial_m = 16;
  options.max_m = 2048;
  options.seed = 11;
  options.iterations = 16;
  AdaptiveCsProtocol protocol(options);
  CommStats comm;
  ASSERT_TRUE(protocol.Run(*setup.cluster, k, &comm).ok());

  const size_t final_m = protocol.rounds().back().m;
  EXPECT_EQ(comm.tuples_total(),
            setup.cluster->num_nodes() * final_m);

  CsProtocolOptions fixed;
  fixed.m = final_m;
  fixed.seed = options.seed;
  CsOutlierProtocol fixed_protocol(fixed);
  CommStats fixed_comm;
  ASSERT_TRUE(fixed_protocol.Run(*setup.cluster, k, &fixed_comm).ok());
  EXPECT_EQ(comm.bytes_total(), fixed_comm.bytes_total());
}

TEST(AdaptiveProtocolTest, CheaperThanWorstCaseFixedM) {
  // On easy data the adaptive run stops far below max_m.
  const size_t k = 3;
  TestCluster setup = MakeSetup(1200, 6, k, 21);

  AdaptiveCsOptions options;
  options.initial_m = 32;
  options.max_m = 1200;
  options.seed = 5;
  options.iterations = 12;
  AdaptiveCsProtocol protocol(options);
  CommStats comm;
  auto result = protocol.Run(*setup.cluster, k, &comm).MoveValue();
  EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(setup.truth, result), 0.0);
  EXPECT_LT(protocol.rounds().back().m, options.max_m / 2);
}

TEST(AdaptiveProtocolTest, StableTopKCriterion) {
  // With a top-k-sized iteration budget the residual never reaches zero;
  // the stability criterion must terminate the loop instead.
  const size_t k = 3;
  TestCluster setup = MakeSetup(1000, 30, k, 33);

  AdaptiveCsOptions options;
  options.initial_m = 64;
  options.max_m = 1000;
  options.seed = 13;
  options.iterations = 0;  // f(k) — far below s.
  options.accept_on_stable_topk = true;
  AdaptiveCsProtocol protocol(options);
  CommStats comm;
  auto result = protocol.Run(*setup.cluster, k, &comm).MoveValue();
  ASSERT_FALSE(protocol.rounds().empty());
  const AdaptiveRound& last = protocol.rounds().back();
  // Either stability fired before the cap, or we hit the cap; on this
  // easy data stability should fire.
  EXPECT_TRUE(last.accepted);
  EXPECT_TRUE(last.topk_stable);
  EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(setup.truth, result), 0.0);
}

TEST(AdaptiveProtocolTest, DegenerateSingleRoundEqualsFixedProtocol) {
  const size_t k = 4;
  TestCluster setup = MakeSetup(600, 8, k, 41);

  AdaptiveCsOptions options;
  options.initial_m = 200;
  options.max_m = 200;  // initial == max: one round.
  options.seed = 17;
  options.iterations = 12;
  AdaptiveCsProtocol adaptive(options);
  CommStats adaptive_comm;
  auto adaptive_result =
      adaptive.Run(*setup.cluster, k, &adaptive_comm).MoveValue();
  EXPECT_EQ(adaptive.rounds().size(), 1u);

  CsProtocolOptions fixed;
  fixed.m = 200;
  fixed.seed = 17;
  fixed.iterations = 12;
  CsOutlierProtocol fixed_protocol(fixed);
  CommStats fixed_comm;
  auto fixed_result =
      fixed_protocol.Run(*setup.cluster, k, &fixed_comm).MoveValue();

  ASSERT_EQ(adaptive_result.outliers.size(), fixed_result.outliers.size());
  for (size_t i = 0; i < fixed_result.outliers.size(); ++i) {
    EXPECT_EQ(adaptive_result.outliers[i].key_index,
              fixed_result.outliers[i].key_index);
  }
  EXPECT_EQ(adaptive_comm.bytes_total(), fixed_comm.bytes_total());
}

TEST(TwoPhaseProtocolTest, ValidatesOptions) {
  Cluster cluster(10);
  ASSERT_TRUE(cluster.AddNode({}).ok());
  CommStats comm;
  AdaptiveCsOptions bad;
  bad.strategy = AdaptiveStrategy::kTwoPhase;
  bad.locate_m = 0;
  EXPECT_FALSE(AdaptiveCsProtocol(bad).Run(cluster, 3, &comm).ok());
  bad.locate_m = 64;
  EXPECT_FALSE(AdaptiveCsProtocol(bad).Run(cluster, 3, nullptr).ok());
  Cluster empty(10);
  EXPECT_FALSE(AdaptiveCsProtocol(bad).Run(empty, 3, &comm).ok());
}

TEST(TwoPhaseProtocolTest, LocateThenRefineRecoversExactAnswer) {
  const size_t k = 5;
  TestCluster setup = MakeSetup(1000, 15, k, 51);

  AdaptiveCsOptions options;
  options.strategy = AdaptiveStrategy::kTwoPhase;
  options.locate_m = 200;
  options.seed = 9;
  options.iterations = 20;  // Past the sparsity: locate sees every outlier.
  AdaptiveCsProtocol protocol(options);
  EXPECT_EQ(protocol.name(), "TwoPhaseCS");
  CommStats comm;
  auto result = protocol.Run(*setup.cluster, k, &comm).MoveValue();

  EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(setup.truth, result), 0.0);
  // Refined values are overdetermined least squares on the candidate
  // columns — exact in the noiseless model, not just CS-approximate.
  EXPECT_LT(outlier::ErrorOnValue(setup.truth, result), 1e-6);

  ASSERT_EQ(protocol.rounds().size(), 2u);
  EXPECT_STREQ(protocol.rounds()[0].phase, "locate");
  EXPECT_STREQ(protocol.rounds()[1].phase, "refine");
  EXPECT_TRUE(protocol.rounds()[1].accepted);
  EXPECT_LT(protocol.rounds()[1].relative_residual, 1e-9);

  // Every pass is accounted under its own phase label.
  const auto& by_phase = comm.bytes_by_phase();
  ASSERT_TRUE(by_phase.count("locate-measurements"));
  ASSERT_TRUE(by_phase.count("support-broadcast"));
  ASSERT_TRUE(by_phase.count("refine-measurements"));
  EXPECT_EQ(by_phase.at("locate-measurements"),
            setup.cluster->num_nodes() * options.locate_m *
                kMeasurementBytes);
  EXPECT_EQ(comm.rounds(), 2u);
}

TEST(TwoPhaseProtocolTest, CheaperThanFixedMAtMatchedAccuracy) {
  const size_t k = 5;
  TestCluster setup = MakeSetup(1000, 15, k, 57);

  AdaptiveCsOptions options;
  options.strategy = AdaptiveStrategy::kTwoPhase;
  options.locate_m = 200;
  options.seed = 13;
  options.iterations = 20;
  AdaptiveCsProtocol two_phase(options);
  CommStats two_phase_comm;
  auto two_phase_result =
      two_phase.Run(*setup.cluster, k, &two_phase_comm).MoveValue();
  EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(setup.truth, two_phase_result), 0.0);

  // The fixed-M protocol needs M comfortably past the sparsity for the
  // same exactness (differential_test pins M >= 10s for its contract; 400
  // is the bench's fixed-M operating point for this workload family).
  CsProtocolOptions fixed;
  fixed.m = 400;
  fixed.seed = 13;
  fixed.iterations = 20;
  CsOutlierProtocol fixed_protocol(fixed);
  CommStats fixed_comm;
  auto fixed_result =
      fixed_protocol.Run(*setup.cluster, k, &fixed_comm).MoveValue();
  EXPECT_DOUBLE_EQ(outlier::ErrorOnKey(setup.truth, fixed_result), 0.0);

  // The acceptance bar of ISSUE 8: >= 30% fewer measurement bytes.
  EXPECT_LE(two_phase_comm.bytes_total(),
            (fixed_comm.bytes_total() * 7) / 10);
}

TEST(TwoPhaseProtocolTest, DegradedModeExcludesFailedNodes) {
  const size_t k = 4;
  TestCluster setup = MakeSetup(600, 10, k, 61);

  AdaptiveCsOptions options;
  options.strategy = AdaptiveStrategy::kTwoPhase;
  options.locate_m = 160;
  options.seed = 17;
  options.iterations = 14;
  options.faults.crash_nodes = {setup.cluster->NodeIds()[0]};
  AdaptiveCsProtocol protocol(options);
  CommStats comm;
  ASSERT_TRUE(protocol.Run(*setup.cluster, k, &comm).ok());
  EXPECT_FALSE(protocol.last_collection().excluded_nodes.empty());

  options.allow_degraded = false;
  AdaptiveCsProtocol strict(options);
  CommStats strict_comm;
  EXPECT_FALSE(strict.Run(*setup.cluster, k, &strict_comm).ok());
}

}  // namespace
}  // namespace csod::dist
