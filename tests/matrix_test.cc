#include "la/matrix.h"

#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace csod::la {
namespace {

Matrix Make2x3() {
  Matrix m(2, 3);
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(0, 2) = 3;
  m(1, 0) = 4;
  m(1, 1) = 5;
  m(1, 2) = 6;
  return m;
}

TEST(MatrixTest, ConstructionZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(MatrixTest, CheckedAccess) {
  Matrix m = Make2x3();
  ASSERT_TRUE(m.At(1, 2).ok());
  EXPECT_EQ(m.At(1, 2).Value(), 6.0);
  EXPECT_FALSE(m.At(2, 0).ok());
  EXPECT_FALSE(m.At(0, 3).ok());
  EXPECT_EQ(m.At(5, 5).status().code(), StatusCode::kOutOfRange);
}

TEST(MatrixTest, Multiply) {
  Matrix m = Make2x3();
  auto y = m.Multiply({1, 0, -1});
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y.Value(), (std::vector<double>{-2, -2}));
}

TEST(MatrixTest, MultiplySizeMismatch) {
  Matrix m = Make2x3();
  EXPECT_FALSE(m.Multiply({1, 2}).ok());
}

TEST(MatrixTest, MultiplyTransposed) {
  Matrix m = Make2x3();
  auto y = m.MultiplyTransposed({1, 1});
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y.Value(), (std::vector<double>{5, 7, 9}));
  EXPECT_FALSE(m.MultiplyTransposed({1, 2, 3}).ok());
}

TEST(MatrixTest, ColumnRoundTrip) {
  Matrix m = Make2x3();
  EXPECT_EQ(m.Column(1), (std::vector<double>{2, 5}));
  ASSERT_TRUE(m.SetColumn(1, {9, 10}).ok());
  EXPECT_EQ(m.Column(1), (std::vector<double>{9, 10}));
}

TEST(MatrixTest, SetColumnErrors) {
  Matrix m = Make2x3();
  EXPECT_FALSE(m.SetColumn(3, {1, 2}).ok());
  EXPECT_FALSE(m.SetColumn(0, {1, 2, 3}).ok());
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m(2, 2);
  m(0, 0) = 3;
  m(1, 1) = 4;
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

// Adjoint property sweep: <A x, y> == <x, A^T y> across shapes.
class MatrixAdjointTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(MatrixAdjointTest, AdjointIdentity) {
  const auto [rows, cols] = GetParam();
  Matrix a(rows, cols);
  // Deterministic pseudo-random fill.
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      a(r, c) = std::sin(static_cast<double>(r * 31 + c * 17 + 1));
    }
  }
  std::vector<double> x(cols);
  std::vector<double> y(rows);
  for (size_t c = 0; c < cols; ++c) x[c] = std::cos(static_cast<double>(c));
  for (size_t r = 0; r < rows; ++r) y[r] = std::cos(static_cast<double>(r + 7));

  auto ax = a.Multiply(x).MoveValue();
  auto aty = a.MultiplyTransposed(y).MoveValue();
  double lhs = 0.0;
  double rhs = 0.0;
  for (size_t r = 0; r < rows; ++r) lhs += ax[r] * y[r];
  for (size_t c = 0; c < cols; ++c) rhs += x[c] * aty[c];
  EXPECT_NEAR(lhs, rhs, 1e-9 * (1.0 + std::fabs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatrixAdjointTest,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(3, 7),
                                           std::make_pair(7, 3),
                                           std::make_pair(16, 16),
                                           std::make_pair(64, 5)));

TEST(MatrixTest, EmptyMatrix) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 0.0);
}

}  // namespace
}  // namespace csod::la
