#include "core/windowed_detector.h"

#include <vector>

#include <gtest/gtest.h>

#include "la/vector_ops.h"
#include "outlier/metrics.h"

namespace csod::core {
namespace {

WindowedDetectorOptions SmallOptions(size_t window = 3) {
  WindowedDetectorOptions options;
  options.n = 400;
  options.m = 150;
  options.seed = 5;
  options.iterations = 12;
  options.window_epochs = window;
  return options;
}

cs::SparseSlice BaselineSlice(size_t n, double value) {
  cs::SparseSlice slice;
  for (size_t i = 0; i < n; ++i) {
    slice.indices.push_back(i);
    slice.values.push_back(value);
  }
  return slice;
}

cs::SparseSlice Spike(size_t key, double value) {
  cs::SparseSlice slice;
  slice.indices = {key};
  slice.values = {value};
  return slice;
}

TEST(WindowedDetectorTest, CreateValidates) {
  WindowedDetectorOptions bad;
  EXPECT_FALSE(WindowedOutlierDetector::Create(bad).ok());
  bad.n = 10;
  EXPECT_FALSE(WindowedOutlierDetector::Create(bad).ok());
  bad.m = 4;
  EXPECT_FALSE(WindowedOutlierDetector::Create(bad).ok());
  bad.window_epochs = 2;
  EXPECT_TRUE(WindowedOutlierDetector::Create(bad).ok());
}

TEST(WindowedDetectorTest, IngestBeforeEpochFails) {
  auto detector = WindowedOutlierDetector::Create(SmallOptions()).MoveValue();
  EXPECT_FALSE(detector->Ingest(Spike(1, 2.0)).ok());
  EXPECT_FALSE(detector->IngestMeasurement(std::vector<double>(150)).ok());
  EXPECT_FALSE(detector->Detect(3).ok());
}

TEST(WindowedDetectorTest, DetectsWithinWindow) {
  auto detector = WindowedOutlierDetector::Create(SmallOptions()).MoveValue();
  detector->AdvanceEpoch();
  ASSERT_TRUE(detector->Ingest(BaselineSlice(400, 100.0)).ok());
  ASSERT_TRUE(detector->Ingest(Spike(42, 50000.0)).ok());
  auto result = detector->Detect(1).MoveValue();
  ASSERT_EQ(result.outliers.size(), 1u);
  EXPECT_EQ(result.outliers[0].key_index, 42u);
  EXPECT_NEAR(result.mode, 100.0, 1e-3);
}

TEST(WindowedDetectorTest, OldEpochsExpire) {
  // A spike in epoch 0 must vanish from queries once the window slides
  // past it.
  auto detector =
      WindowedOutlierDetector::Create(SmallOptions(/*window=*/2)).MoveValue();

  detector->AdvanceEpoch();  // Epoch 0: the spike.
  ASSERT_TRUE(detector->Ingest(BaselineSlice(400, 10.0)).ok());
  ASSERT_TRUE(detector->Ingest(Spike(7, 90000.0)).ok());

  auto with_spike = detector->Detect(1).MoveValue();
  ASSERT_EQ(with_spike.outliers.size(), 1u);
  EXPECT_EQ(with_spike.outliers[0].key_index, 7u);

  detector->AdvanceEpoch();  // Epoch 1: quiet.
  ASSERT_TRUE(detector->Ingest(BaselineSlice(400, 10.0)).ok());
  detector->AdvanceEpoch();  // Epoch 2: epoch 0 expires (window = 2).
  ASSERT_TRUE(detector->Ingest(BaselineSlice(400, 10.0)).ok());
  ASSERT_TRUE(detector->Ingest(Spike(300, -70000.0)).ok());
  EXPECT_EQ(detector->epochs_retained(), 2u);

  auto after = detector->Detect(1).MoveValue();
  ASSERT_EQ(after.outliers.size(), 1u);
  EXPECT_EQ(after.outliers[0].key_index, 300u);  // Key 7's spike is gone.
}

TEST(WindowedDetectorTest, WindowSumMatchesUnwindowedDetector) {
  // Two epochs of data within the window == one detector fed both slices.
  auto windowed =
      WindowedOutlierDetector::Create(SmallOptions(/*window=*/4)).MoveValue();
  windowed->AdvanceEpoch();
  ASSERT_TRUE(windowed->Ingest(BaselineSlice(400, 30.0)).ok());
  windowed->AdvanceEpoch();
  ASSERT_TRUE(windowed->Ingest(Spike(9, 12345.0)).ok());

  DetectorOptions plain_options;
  plain_options.n = 400;
  plain_options.m = 150;
  plain_options.seed = 5;
  plain_options.iterations = 12;
  auto plain = DistributedOutlierDetector::Create(plain_options).MoveValue();
  ASSERT_TRUE(plain->AddSource(BaselineSlice(400, 30.0)).ok());
  ASSERT_TRUE(plain->AddSource(Spike(9, 12345.0)).ok());

  auto windowed_recovery = windowed->Recover(12).MoveValue();
  auto plain_recovery = plain->Recover(12).MoveValue();
  EXPECT_LT(la::DistanceL2(windowed_recovery.Materialize(400),
                           plain_recovery.Materialize(400)),
            1e-9);
}

TEST(WindowedDetectorTest, IngestMeasurementEquivalentToIngest) {
  auto a = WindowedOutlierDetector::Create(SmallOptions()).MoveValue();
  auto b = WindowedOutlierDetector::Create(SmallOptions()).MoveValue();
  cs::SparseSlice slice = Spike(11, 777.0);

  a->AdvanceEpoch();
  ASSERT_TRUE(a->Ingest(slice).ok());

  cs::MeasurementMatrix matrix(150, 400, 5);
  auto y = matrix.MultiplySparse(slice.indices, slice.values).MoveValue();
  b->AdvanceEpoch();
  ASSERT_TRUE(b->IngestMeasurement(y).ok());

  auto ra = a->Recover(8).MoveValue();
  auto rb = b->Recover(8).MoveValue();
  EXPECT_EQ(ra.Materialize(400), rb.Materialize(400));
}

TEST(WindowedDetectorTest, RolloverExactlyAtWindowEpochs) {
  // The boundary the streaming layer leans on: data from epoch 0 is still
  // visible in epoch window_epochs - 1 and gone in epoch window_epochs.
  const size_t window = 3;
  auto detector =
      WindowedOutlierDetector::Create(SmallOptions(window)).MoveValue();

  detector->AdvanceEpoch();  // Epoch 0: the spike.
  ASSERT_TRUE(detector->Ingest(BaselineSlice(400, 10.0)).ok());
  ASSERT_TRUE(detector->Ingest(Spike(5, 80000.0)).ok());
  for (size_t epoch = 1; epoch < window; ++epoch) {
    detector->AdvanceEpoch();
    ASSERT_TRUE(detector->Ingest(BaselineSlice(400, 10.0)).ok());
  }
  // Epoch window - 1: epoch 0 is the oldest retained epoch, still inside.
  EXPECT_EQ(detector->current_epoch(), window - 1);
  EXPECT_EQ(detector->epochs_retained(), window);
  auto inside = detector->Detect(1).MoveValue();
  ASSERT_EQ(inside.outliers.size(), 1u);
  EXPECT_EQ(inside.outliers[0].key_index, 5u);

  // Epoch window: exactly one more advance expires epoch 0.
  detector->AdvanceEpoch();
  ASSERT_TRUE(detector->Ingest(BaselineSlice(400, 10.0)).ok());
  ASSERT_TRUE(detector->Ingest(Spike(123, -60000.0)).ok());
  EXPECT_EQ(detector->epochs_retained(), window);
  auto outside = detector->Detect(1).MoveValue();
  ASSERT_EQ(outside.outliers.size(), 1u);
  EXPECT_EQ(outside.outliers[0].key_index, 123u);  // Key 5 rolled out.
}

TEST(WindowedDetectorTest, InterleavedIngestAndIngestMeasurement) {
  // Mixing raw slices and pre-compressed measurements within and across
  // epochs must be bit-identical to ingesting every slice raw — linearity
  // plus the fixed Axpy fold order make the two paths the same sums.
  auto mixed = WindowedOutlierDetector::Create(SmallOptions()).MoveValue();
  auto raw = WindowedOutlierDetector::Create(SmallOptions()).MoveValue();
  cs::MeasurementMatrix matrix(150, 400, 5);

  const std::vector<cs::SparseSlice> slices = {
      BaselineSlice(400, 20.0), Spike(3, 900.0), Spike(17, -450.0),
      BaselineSlice(400, 1.0)};
  mixed->AdvanceEpoch();
  raw->AdvanceEpoch();
  for (size_t i = 0; i < slices.size(); ++i) {
    if (i == 2) {  // Epoch boundary mid-sequence.
      mixed->AdvanceEpoch();
      raw->AdvanceEpoch();
    }
    ASSERT_TRUE(raw->Ingest(slices[i]).ok());
    if (i % 2 == 0) {
      ASSERT_TRUE(mixed->Ingest(slices[i]).ok());
    } else {
      auto y = matrix.MultiplySparse(slices[i].indices, slices[i].values)
                   .MoveValue();
      ASSERT_TRUE(mixed->IngestMeasurement(y).ok());
    }
  }
  auto mixed_recovery = mixed->Recover(12).MoveValue();
  auto raw_recovery = raw->Recover(12).MoveValue();
  EXPECT_EQ(mixed_recovery.Materialize(400), raw_recovery.Materialize(400));
}

TEST(WindowedDetectorTest, DetectAfterExpiringAllData) {
  // Slide the window until every data-carrying epoch expired: the window
  // measurement is exactly zero, and Detect must degrade gracefully (no
  // outliers, zero mode) rather than fail or fabricate keys.
  auto detector =
      WindowedOutlierDetector::Create(SmallOptions(/*window=*/2)).MoveValue();
  detector->AdvanceEpoch();
  ASSERT_TRUE(detector->Ingest(BaselineSlice(400, 10.0)).ok());
  ASSERT_TRUE(detector->Ingest(Spike(8, 70000.0)).ok());
  detector->AdvanceEpoch();
  detector->AdvanceEpoch();  // Epoch 0 expired; both retained epochs empty.

  auto recovery = detector->Recover(12).MoveValue();
  EXPECT_EQ(recovery.mode, 0.0);
  auto result = detector->Detect(3).MoveValue();
  EXPECT_EQ(result.mode, 0.0);
  for (const auto& outlier : result.outliers) {
    EXPECT_EQ(outlier.value, 0.0);
    EXPECT_EQ(outlier.divergence, 0.0);
  }
}

TEST(WindowedDetectorTest, ClosedWindowMeasurementExcludesCurrentEpoch) {
  auto detector =
      WindowedOutlierDetector::Create(SmallOptions(/*window=*/3)).MoveValue();
  detector->AdvanceEpoch();
  EXPECT_FALSE(detector->ClosedWindowMeasurement().ok());  // Nothing closed.

  ASSERT_TRUE(detector->Ingest(Spike(4, 111.0)).ok());
  detector->AdvanceEpoch();
  ASSERT_TRUE(detector->Ingest(Spike(6, 222.0)).ok());

  // Closed window == epoch 0 only; the in-progress epoch 1 is excluded.
  cs::MeasurementMatrix matrix(150, 400, 5);
  auto epoch0 = matrix.MultiplySparse({4}, {111.0}).MoveValue();
  EXPECT_EQ(detector->ClosedWindowMeasurement().MoveValue(), epoch0);
}

TEST(WindowedDetectorTest, EpochCounterAdvances) {
  auto detector = WindowedOutlierDetector::Create(SmallOptions()).MoveValue();
  EXPECT_EQ(detector->current_epoch(), 0u);
  EXPECT_EQ(detector->AdvanceEpoch(), 0u);
  EXPECT_EQ(detector->AdvanceEpoch(), 1u);
  EXPECT_EQ(detector->AdvanceEpoch(), 2u);
  EXPECT_EQ(detector->AdvanceEpoch(), 3u);
  EXPECT_EQ(detector->epochs_retained(), 3u);  // window_epochs == 3.
}

}  // namespace
}  // namespace csod::core
