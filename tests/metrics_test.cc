#include "outlier/metrics.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace csod::outlier {
namespace {

OutlierSet MakeSet(std::vector<std::pair<size_t, double>> entries,
                   double mode = 0.0) {
  OutlierSet set;
  set.mode = mode;
  for (auto& [key, value] : entries) {
    set.outliers.push_back(Outlier{key, value, std::fabs(value - mode)});
  }
  return set;
}

TEST(ErrorOnKeyTest, PerfectMatchIsZero) {
  OutlierSet truth = MakeSet({{1, 10}, {2, 20}});
  OutlierSet estimate = MakeSet({{2, 21}, {1, 9}});  // Order irrelevant.
  EXPECT_DOUBLE_EQ(ErrorOnKey(truth, estimate), 0.0);
}

TEST(ErrorOnKeyTest, CompleteMissIsOne) {
  OutlierSet truth = MakeSet({{1, 10}, {2, 20}});
  OutlierSet estimate = MakeSet({{3, 10}, {4, 20}});
  EXPECT_DOUBLE_EQ(ErrorOnKey(truth, estimate), 1.0);
}

TEST(ErrorOnKeyTest, PartialOverlap) {
  OutlierSet truth = MakeSet({{1, 1}, {2, 2}, {3, 3}, {4, 4}});
  OutlierSet estimate = MakeSet({{1, 1}, {2, 2}, {9, 9}, {10, 10}});
  EXPECT_DOUBLE_EQ(ErrorOnKey(truth, estimate), 0.5);
}

TEST(ErrorOnKeyTest, ShortEstimateCountsAsMisses) {
  OutlierSet truth = MakeSet({{1, 1}, {2, 2}});
  OutlierSet estimate = MakeSet({{1, 1}});
  EXPECT_DOUBLE_EQ(ErrorOnKey(truth, estimate), 0.5);
}

TEST(ErrorOnKeyTest, EmptyTruthIsZeroError) {
  OutlierSet truth;
  OutlierSet estimate = MakeSet({{1, 1}});
  EXPECT_DOUBLE_EQ(ErrorOnKey(truth, estimate), 0.0);
}

TEST(ErrorOnValueTest, IdenticalValuesZeroError) {
  OutlierSet truth = MakeSet({{1, 10}, {2, -5}});
  OutlierSet estimate = MakeSet({{7, -5}, {8, 10}});  // Keys don't matter.
  EXPECT_NEAR(ErrorOnValue(truth, estimate), 0.0, 1e-15);
}

TEST(ErrorOnValueTest, RelativeL2OfSortedValues) {
  OutlierSet truth = MakeSet({{1, 3.0}, {2, 4.0}});
  OutlierSet estimate = MakeSet({{1, 3.0}, {2, 0.0}});
  // Sorted desc: truth (4,3), estimate (3,0): diff (1,3), ||truth|| = 5.
  EXPECT_NEAR(ErrorOnValue(truth, estimate), std::sqrt(10.0) / 5.0, 1e-12);
}

TEST(ErrorOnValueTest, ShortEstimatePaddedWithItsMode) {
  OutlierSet truth = MakeSet({{1, 10.0}, {2, 6.0}});
  OutlierSet estimate = MakeSet({{1, 10.0}}, /*mode=*/6.0);
  // Padded estimate values: (10, 6) — matches truth exactly.
  EXPECT_NEAR(ErrorOnValue(truth, estimate), 0.0, 1e-15);
}

TEST(ErrorOnValueTest, LongEstimateTruncated) {
  OutlierSet truth = MakeSet({{1, 10.0}});
  OutlierSet estimate = MakeSet({{1, 10.0}, {2, 99.0}, {3, -5.0}});
  // Sorted desc, truncated to |truth| = 1: estimate value list is (99).
  EXPECT_NEAR(ErrorOnValue(truth, estimate), 89.0 / 10.0, 1e-12);
}

TEST(ErrorOnValueTest, EmptyTruthIsZero) {
  OutlierSet truth;
  OutlierSet estimate = MakeSet({{1, 1.0}});
  EXPECT_DOUBLE_EQ(ErrorOnValue(truth, estimate), 0.0);
}

TEST(ErrorOnValueTest, ZeroNormTruthHandled) {
  OutlierSet truth = MakeSet({{1, 0.0}});
  OutlierSet exact = MakeSet({{2, 0.0}});
  OutlierSet wrong = MakeSet({{2, 5.0}});
  EXPECT_DOUBLE_EQ(ErrorOnValue(truth, exact), 0.0);
  EXPECT_DOUBLE_EQ(ErrorOnValue(truth, wrong), 1.0);
}

TEST(ErrorStatsTest, FromSamples) {
  ErrorStats stats = ErrorStats::FromSamples({0.1, 0.5, 0.3});
  EXPECT_DOUBLE_EQ(stats.min, 0.1);
  EXPECT_DOUBLE_EQ(stats.max, 0.5);
  EXPECT_NEAR(stats.avg, 0.3, 1e-12);
  EXPECT_EQ(stats.count, 3u);
}

TEST(ErrorStatsTest, Empty) {
  ErrorStats stats = ErrorStats::FromSamples({});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_DOUBLE_EQ(stats.avg, 0.0);
}

}  // namespace
}  // namespace csod::outlier
