// Unit tests for the obs::Telemetry registry: counters, value histograms
// (power-of-two bucketing), trace spans, the disabled sink's no-op
// contract, and the deterministic-JSON snapshot guarantees of DESIGN.md §9.

#include <cmath>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mapreduce/engine.h"
#include "obs/telemetry.h"

namespace csod::obs {
namespace {

TEST(TelemetryTest, CountersAccumulateAndMissingReadsZero) {
  Telemetry t;
  EXPECT_TRUE(t.enabled());
  EXPECT_EQ(t.counter("never.recorded"), 0u);
  t.AddCounter("comm.retries");
  t.AddCounter("comm.retries", 4);
  t.AddCounter("comm.bytes.measurements", 4096);
  EXPECT_EQ(t.counter("comm.retries"), 5u);
  EXPECT_EQ(t.counter("comm.bytes.measurements"), 4096u);
}

TEST(TelemetryTest, ValueStatsTrackCountSumMinMax) {
  Telemetry t;
  t.RecordValue("bomp.iterations", 3.0);
  t.RecordValue("bomp.iterations", 7.0);
  t.RecordValue("bomp.iterations", 5.0);
  const ValueStats stats = t.value("bomp.iterations");
  EXPECT_EQ(stats.count, 3u);
  EXPECT_DOUBLE_EQ(stats.sum, 15.0);
  EXPECT_DOUBLE_EQ(stats.min, 3.0);
  EXPECT_DOUBLE_EQ(stats.max, 7.0);
  // Missing histogram reads as empty.
  EXPECT_EQ(t.value("absent").count, 0u);
}

TEST(TelemetryTest, BucketsUsePowerOfTwoMagnitudes) {
  Telemetry t;
  // Bucket key e satisfies 2^(e-1) <= v < 2^e for positive v.
  t.RecordValue("h", 1.0);   // 2^0 <= 1 < 2^1   -> bucket 1
  t.RecordValue("h", 1.5);   // 2^0 <= 1.5 < 2^1 -> bucket 1
  t.RecordValue("h", 4.0);   // 2^2 <= 4 < 2^3   -> bucket 3
  t.RecordValue("h", 0.25);  // 2^-3 <= .25 < 2^-2 -> bucket -1
  t.RecordValue("h", 0.0);
  t.RecordValue("h", -8.0);
  const ValueStats stats = t.value("h");
  ASSERT_EQ(stats.buckets.size(), 5u);
  EXPECT_EQ(stats.buckets.at(1), 2u);
  EXPECT_EQ(stats.buckets.at(3), 1u);
  EXPECT_EQ(stats.buckets.at(-1), 1u);
  EXPECT_EQ(stats.buckets.at(ValueStats::kZeroBucket), 1u);
  EXPECT_EQ(stats.buckets.at(ValueStats::kNegativeBucket), 1u);
}

TEST(TelemetryTest, NonFiniteValuesDroppedAndTallied) {
  Telemetry t;
  t.RecordValue("omp.residual_norm", 1.0);
  t.RecordValue("omp.residual_norm", std::nan(""));
  t.RecordValue("omp.residual_norm",
                std::numeric_limits<double>::infinity());
  t.RecordValue("omp.residual_norm",
                -std::numeric_limits<double>::infinity());
  const ValueStats stats = t.value("omp.residual_norm");
  EXPECT_EQ(stats.count, 1u);  // Only the finite recording landed.
  EXPECT_DOUBLE_EQ(stats.sum, 1.0);
  EXPECT_EQ(t.counter("obs.nonfinite_dropped"), 3u);
}

TEST(TelemetryTest, TraceSpanRecordsOnDestruction) {
  Telemetry t;
  EXPECT_EQ(t.span("bomp.recover").count, 0u);
  {
    TraceSpan span(&t, "bomp.recover");
    EXPECT_EQ(t.span("bomp.recover").count, 0u);  // Not yet closed.
  }
  const SpanStats stats = t.span("bomp.recover");
  EXPECT_EQ(stats.count, 1u);
  EXPECT_GE(stats.total_seconds, 0.0);
  EXPECT_LE(stats.min_seconds, stats.max_seconds);
}

TEST(TelemetryTest, DisabledSinkIsANoOp) {
  Telemetry* off = Telemetry::Disabled();
  ASSERT_NE(off, nullptr);
  EXPECT_FALSE(off->enabled());
  off->AddCounter("comm.retries", 100);
  off->RecordValue("bomp.iterations", 5.0);
  off->RecordSpan("bomp.recover", 1.0);
  { TraceSpan span(off, "bomp.recover"); }
  { TraceSpan span(nullptr, "bomp.recover"); }  // Null is also safe.
  EXPECT_EQ(off->counter("comm.retries"), 0u);
  EXPECT_EQ(off->value("bomp.iterations").count, 0u);
  EXPECT_EQ(off->span("bomp.recover").count, 0u);
  // Same singleton on every call.
  EXPECT_EQ(off, Telemetry::Disabled());
}

TEST(TelemetryTest, ResetClearsEverything) {
  Telemetry t;
  t.AddCounter("c", 3);
  t.RecordValue("v", 2.0);
  t.RecordSpan("s", 0.5);
  t.Reset();
  EXPECT_EQ(t.counter("c"), 0u);
  EXPECT_EQ(t.value("v").count, 0u);
  EXPECT_EQ(t.span("s").count, 0u);
  EXPECT_EQ(t.SnapshotJson(), Telemetry().SnapshotJson());
}

TEST(TelemetryTest, DeterministicSnapshotIsByteStable) {
  // Two registries fed the same recording sequence — in a different
  // interleaving order across names — must snapshot byte-identically:
  // maps sort the keys and the per-name aggregates are order-free.
  Telemetry a;
  a.AddCounter("comm.rounds");
  a.AddCounter("comm.bytes.measurements", 800);
  a.RecordValue("bomp.iterations", 24.0);
  a.RecordValue("bomp.final_residual_norm", 1.25e-9);
  a.RecordSpan("protocol.cs", 0.010);

  Telemetry b;
  b.RecordSpan("protocol.cs", 0.999);  // Duration differs — omitted.
  b.RecordValue("bomp.final_residual_norm", 1.25e-9);
  b.AddCounter("comm.bytes.measurements", 800);
  b.RecordValue("bomp.iterations", 24.0);
  b.AddCounter("comm.rounds");

  EXPECT_EQ(a.SnapshotJson(), b.SnapshotJson());
  // Wall-clock durations make the non-deterministic snapshots differ.
  EXPECT_NE(a.SnapshotJson(/*deterministic=*/false),
            b.SnapshotJson(/*deterministic=*/false));
}

TEST(TelemetryTest, DeterministicSnapshotOmitsDurations) {
  Telemetry t;
  t.RecordSpan("protocol.cs", 0.125);
  const std::string deterministic = t.SnapshotJson(/*deterministic=*/true);
  EXPECT_EQ(deterministic.find("seconds"), std::string::npos);
  EXPECT_NE(deterministic.find("\"protocol.cs\": {\"count\": 1}"),
            std::string::npos);
  const std::string timed = t.SnapshotJson(/*deterministic=*/false);
  EXPECT_NE(timed.find("total_seconds"), std::string::npos);
}

TEST(TelemetryTest, SnapshotKeysAreSorted) {
  Telemetry t;
  t.AddCounter("zebra");
  t.AddCounter("alpha");
  t.AddCounter("mid");
  const std::string json = t.SnapshotJson();
  const size_t alpha = json.find("\"alpha\"");
  const size_t mid = json.find("\"mid\"");
  const size_t zebra = json.find("\"zebra\"");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(mid, std::string::npos);
  ASSERT_NE(zebra, std::string::npos);
  EXPECT_LT(alpha, mid);
  EXPECT_LT(mid, zebra);
  EXPECT_FALSE(json.empty());
  EXPECT_EQ(json.back(), '\n');
}

TEST(TelemetryTest, SnapshotEscapesExoticNames) {
  Telemetry t;
  t.AddCounter("weird\"name\\with\nnoise");
  const std::string json = t.SnapshotJson();
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nnoise"), std::string::npos);
}

TEST(TelemetryTest, ConcurrentRecordingIsLossless) {
  Telemetry t;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t] {
      for (int j = 0; j < kPerThread; ++j) {
        t.AddCounter("contended");
        t.RecordValue("contended.values", 2.0);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(t.counter("contended"),
            static_cast<uint64_t>(kThreads) * kPerThread);
  const ValueStats stats = t.value("contended.values");
  EXPECT_EQ(stats.count, static_cast<uint64_t>(kThreads) * kPerThread);
  // All recorded values equal, so the float sum is order-independent too.
  EXPECT_DOUBLE_EQ(stats.sum, 2.0 * kThreads * kPerThread);
}

TEST(TelemetryTest, MapReduceShuffleTimingHistograms) {
  // The engine records per-task shuffle timings into value histograms:
  // one mr.shuffle.build_ms sample per map task (combine + radix
  // partition), one mr.shuffle.merge_ms sample per reduce task (group
  // build). Recorded serially after each parallel phase, so the sample
  // counts are exact, not racy.
  Telemetry t;
  mr::Job<int, uint64_t, double, double> job;
  job.map_fn = [](const std::vector<int>& split,
                  mr::Emitter<uint64_t, double>* out) {
    for (int v : split) out->Emit(static_cast<uint64_t>(v % 5), 1.0);
  };
  job.reduce_fn = [](const uint64_t&, mr::Span<double> values,
                     std::vector<double>* out) {
    out->push_back(static_cast<double>(values.size()));
  };
  job.fixed_tuple_bytes = 12;
  job.num_reduce_tasks = 3;
  job.telemetry = &t;
  auto result = mr::RunJob({{1, 2, 3}, {4, 5}, {6}, {7, 8}}, job);
  ASSERT_TRUE(result.ok());

  const ValueStats build = t.value("mr.shuffle.build_ms");
  EXPECT_EQ(build.count, 4u);  // One sample per map task.
  EXPECT_GE(build.min, 0.0);
  const ValueStats merge = t.value("mr.shuffle.merge_ms");
  EXPECT_EQ(merge.count, 3u);  // One sample per reduce task.
  EXPECT_GE(merge.min, 0.0);

  // A disabled sink records nothing — the zero-overhead contract extends
  // to the shuffle histograms.
  Telemetry* off = Telemetry::Disabled();
  job.telemetry = off;
  ASSERT_TRUE(mr::RunJob({{1, 2, 3}}, job).ok());
  EXPECT_EQ(off->value("mr.shuffle.build_ms").count, 0u);
}

}  // namespace
}  // namespace csod::obs
