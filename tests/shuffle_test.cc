#include "mapreduce/shuffle.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/arena.h"
#include "common/parallel.h"
#include "common/random.h"
#include "mapreduce/engine.h"

namespace csod::mr {
namespace {

// --- Arena: page-boundary and alignment edge cases. ---

TEST(ArenaTest, BumpAllocationWithinOnePage) {
  Arena arena(/*page_bytes=*/1024);
  void* a = arena.Allocate(100, 8);
  void* b = arena.Allocate(100, 8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.page_count(), 1u);
  EXPECT_EQ(arena.allocated_bytes(), 200u);
}

TEST(ArenaTest, AllocationCrossingPageBoundaryOpensNewPage) {
  Arena arena(/*page_bytes=*/256);
  arena.Allocate(200, 8);  // Leaves 56 bytes in page 1.
  void* b = arena.Allocate(100, 8);  // Does not fit: page 2.
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(arena.page_count(), 2u);
}

TEST(ArenaTest, OversizedAllocationGetsDedicatedPage) {
  Arena arena(/*page_bytes=*/128);
  void* big = arena.Allocate(4096, 8);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(arena.page_count(), 1u);
  // The next small allocation must not stomp the oversized block.
  void* small = arena.Allocate(16, 8);
  ASSERT_NE(small, nullptr);
  EXPECT_EQ(arena.page_count(), 2u);
}

TEST(ArenaTest, AlignmentIsRespected) {
  Arena arena(/*page_bytes=*/1024);
  arena.Allocate(1, 1);  // Misalign the bump pointer.
  for (size_t alignment : {2u, 4u, 8u, 16u}) {
    void* p = arena.Allocate(8, alignment);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignment, 0u)
        << "alignment = " << alignment;
  }
}

TEST(ArenaTest, ZeroByteAllocationsAreDistinct) {
  Arena arena;
  void* a = arena.Allocate(0, 1);
  void* b = arena.Allocate(0, 1);
  EXPECT_NE(a, b);  // Each zero-byte request still gets a unique address.
}

// --- ColumnChunks: chunk boundaries, stability, non-trivial types. ---

TEST(ColumnChunksTest, AppendAcrossTinyChunks) {
  Arena arena;
  ColumnChunks<int> col(&arena, /*chunk_elems=*/3);
  for (int i = 0; i < 10; ++i) col.Append(i);
  EXPECT_EQ(col.size(), 10u);
  EXPECT_EQ(col.chunk_count(), 4u);  // 3 + 3 + 3 + 1.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(col[static_cast<size_t>(i)], i);
  EXPECT_EQ(col.chunk_size(0), 3u);
  EXPECT_EQ(col.chunk_size(3), 1u);
}

TEST(ColumnChunksTest, ElementsNeverMoveAcrossGrowth) {
  // Unlike std::vector, a pointer taken before later appends stays valid:
  // full chunks are left in place.
  Arena arena;
  ColumnChunks<int> col(&arena, /*chunk_elems=*/4);
  col.Append(41);
  const int* first = &col[0];
  for (int i = 0; i < 100; ++i) col.Append(i);
  EXPECT_EQ(first, &col[0]);
  EXPECT_EQ(*first, 41);
}

TEST(ColumnChunksTest, ForEachChunkWalksAppendOrder) {
  Arena arena;
  ColumnChunks<int> col(&arena, /*chunk_elems=*/4);
  for (int i = 0; i < 11; ++i) col.Append(i);
  std::vector<int> seen;
  std::vector<size_t> chunk_sizes;
  col.ForEachChunk([&](const int* data, size_t count) {
    chunk_sizes.push_back(count);
    seen.insert(seen.end(), data, data + count);
  });
  EXPECT_EQ(chunk_sizes, (std::vector<size_t>{4, 4, 3}));
  std::vector<int> expected(11);
  for (int i = 0; i < 11; ++i) expected[static_cast<size_t>(i)] = i;
  EXPECT_EQ(seen, expected);
}

TEST(ColumnChunksTest, NonTrivialTypeIsDestroyed) {
  // Strings long enough to heap-allocate: ASan/LSan flags the leak if the
  // column's destructor failed to run element destructors.
  Arena arena;
  {
    ColumnChunks<std::string> col(&arena, /*chunk_elems=*/2);
    for (int i = 0; i < 7; ++i) {
      col.Append("a rather long string that defeats SSO " +
                 std::to_string(i));
    }
    EXPECT_EQ(col.size(), 7u);
    EXPECT_EQ(col[6],
              "a rather long string that defeats SSO 6");
  }
}

TEST(ColumnChunksTest, MoveTransfersOwnership) {
  Arena arena;
  ColumnChunks<std::string> a(&arena, /*chunk_elems=*/2);
  a.Append("only one heap-allocated destructor run for this string");
  ColumnChunks<std::string> b(std::move(a));
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): pinned empty.
}

// --- KeyInterner: dense first-appearance ordinals, growth. ---

TEST(KeyInternerTest, FirstAppearanceOrdinals) {
  KeyInterner<uint64_t> interner(/*expected_keys=*/4);
  EXPECT_EQ(interner.Intern(100), 0u);
  EXPECT_EQ(interner.Intern(7), 1u);
  EXPECT_EQ(interner.Intern(100), 0u);  // Repeat hits the same ordinal.
  EXPECT_EQ(interner.Intern(42), 2u);
  EXPECT_EQ(interner.size(), 3u);
  EXPECT_EQ(interner.keys(), (std::vector<uint64_t>{100, 7, 42}));
}

TEST(KeyInternerTest, GrowthPreservesOrdinals) {
  KeyInterner<uint64_t> interner(/*expected_keys=*/2);  // Forces Grow().
  const size_t n = 10000;
  for (uint64_t k = 0; k < n; ++k) {
    EXPECT_EQ(interner.Intern(k * 977 + 13), static_cast<uint32_t>(k));
  }
  for (uint64_t k = 0; k < n; ++k) {  // Re-intern: same ordinals.
    EXPECT_EQ(interner.Intern(k * 977 + 13), static_cast<uint32_t>(k));
  }
  EXPECT_EQ(interner.size(), n);
}

// --- ReduceGroups: grouping, value order, key order. ---

template <typename K, typename V>
auto RunsOver(std::vector<K>& keys, std::vector<V>& values) {
  return [&](auto&& fn) {
    if (!keys.empty()) fn(keys.data(), values.data(), keys.size());
  };
}

TEST(ReduceGroupsTest, GroupsValuesInAppendOrder) {
  std::vector<uint64_t> keys = {5, 2, 5, 9, 2, 5};
  std::vector<int> values = {10, 20, 11, 30, 21, 12};
  auto groups = ReduceGroups<uint64_t, int>::Build(
      keys.size(), /*sorted_keys=*/true, RunsOver(keys, values));
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups.total_values(), 6u);
  // Sorted key iteration; values keep append order within each group.
  EXPECT_EQ(groups.key(0), 2u);
  EXPECT_EQ(std::vector<int>(groups.values(0).begin(), groups.values(0).end()),
            (std::vector<int>{20, 21}));
  EXPECT_EQ(groups.key(1), 5u);
  EXPECT_EQ(std::vector<int>(groups.values(1).begin(), groups.values(1).end()),
            (std::vector<int>{10, 11, 12}));
  EXPECT_EQ(groups.key(2), 9u);
  EXPECT_EQ(groups.values(2).size(), 1u);
}

TEST(ReduceGroupsTest, UnsortedIterationIsFirstAppearance) {
  std::vector<uint64_t> keys = {9, 2, 9, 5};
  std::vector<int> values = {1, 2, 3, 4};
  auto groups = ReduceGroups<uint64_t, int>::Build(
      keys.size(), /*sorted_keys=*/false, RunsOver(keys, values));
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups.key(0), 9u);
  EXPECT_EQ(groups.key(1), 2u);
  EXPECT_EQ(groups.key(2), 5u);
}

TEST(ReduceGroupsTest, EmptyBuild) {
  auto groups = ReduceGroups<uint64_t, int>::Build(
      0, /*sorted_keys=*/true, [](auto&&) {});
  EXPECT_TRUE(groups.empty());
  EXPECT_EQ(groups.total_values(), 0u);
}

TEST(ReduceGroupsTest, MultipleRunsConcatenateInRunOrder) {
  // Two runs emulating two map tasks shipping the same key: group order
  // is (run order, position within run) — the shuffle contract.
  std::vector<uint64_t> keys1 = {7, 8}, keys2 = {8, 7};
  std::vector<int> values1 = {1, 2}, values2 = {3, 4};
  auto groups = ReduceGroups<uint64_t, int>::Build(
      4, /*sorted_keys=*/true, [&](auto&& fn) {
        fn(keys1.data(), values1.data(), keys1.size());
        fn(keys2.data(), values2.data(), keys2.size());
      });
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups.key(0), 7u);
  EXPECT_EQ(std::vector<int>(groups.values(0).begin(), groups.values(0).end()),
            (std::vector<int>{1, 4}));
  EXPECT_EQ(std::vector<int>(groups.values(1).begin(), groups.values(1).end()),
            (std::vector<int>{2, 3}));
}

// --- ScatterPartitions: exactness, stability, empty partitions. ---

TEST(ScatterPartitionsTest, StableAndExact) {
  Arena arena;
  std::vector<uint64_t> keys = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int> values = {0, 10, 20, 30, 40, 50, 60, 70};
  std::vector<ColumnChunks<uint64_t>> key_store;
  std::vector<ColumnChunks<int>> value_store;
  std::vector<PartitionBlock<uint64_t, int>> blocks;
  ScatterPartitions<uint64_t, int>(
      keys.size(), /*num_parts=*/3, &arena,
      [](const uint64_t& k) { return static_cast<size_t>(k); },
      RunsOver(keys, values), &key_store, &value_store, &blocks);
  ASSERT_EQ(blocks.size(), 3u);
  // key % 3: partition 0 <- {0,3,6}, 1 <- {1,4,7}, 2 <- {2,5}.
  EXPECT_EQ(blocks[0].count, 3u);
  EXPECT_EQ(blocks[1].count, 3u);
  EXPECT_EQ(blocks[2].count, 2u);
  ASSERT_EQ(blocks[0].runs.size(), 1u);  // Exact-size: one contiguous run.
  const TupleRun<uint64_t, int>& run = blocks[0].runs[0];
  EXPECT_EQ(std::vector<uint64_t>(run.keys, run.keys + run.count),
            (std::vector<uint64_t>{0, 3, 6}));  // Emit order preserved.
  EXPECT_EQ(std::vector<int>(run.values, run.values + run.count),
            (std::vector<int>{0, 30, 60}));
}

TEST(ScatterPartitionsTest, EmptyPartitionsAreValid) {
  Arena arena;
  std::vector<uint64_t> keys = {4, 4, 4};
  std::vector<int> values = {1, 2, 3};
  std::vector<ColumnChunks<uint64_t>> key_store;
  std::vector<ColumnChunks<int>> value_store;
  std::vector<PartitionBlock<uint64_t, int>> blocks;
  ScatterPartitions<uint64_t, int>(
      keys.size(), /*num_parts=*/8, &arena,
      [](const uint64_t& k) { return static_cast<size_t>(k); },
      RunsOver(keys, values), &key_store, &value_store, &blocks);
  ASSERT_EQ(blocks.size(), 8u);
  for (size_t p = 0; p < 8; ++p) {
    if (p == 4) {
      EXPECT_EQ(blocks[p].count, 3u);
    } else {
      EXPECT_EQ(blocks[p].count, 0u);
      EXPECT_TRUE(blocks[p].runs.empty());
    }
  }
}

// --- Engine stress: high-cardinality, skewed, duplicate-heavy inputs,
// pinned bit-identity across thread limits x reduce tasks x combiner. ---

// ~120k distinct keys over ~400k tuples with a deliberately nasty shape:
// a mega-hot key (~10% of all tuples), a hot set of 16 keys (~30%), and a
// long uniform tail. Values are small integers (exact in double), so any
// reordering of a float fold would still be value-visible via comparison
// with the sequential reference.
struct ScoreEventLike {
  uint64_t key;
  double score;
};

std::vector<std::vector<ScoreEventLike>> StressSplits() {
  const size_t kSplits = 7;
  const size_t kTuplesPerSplit = 60000;
  std::vector<std::vector<ScoreEventLike>> splits(kSplits);
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (size_t s = 0; s < kSplits; ++s) {
    splits[s].reserve(kTuplesPerSplit);
    for (size_t i = 0; i < kTuplesPerSplit; ++i) {
      state = SplitMix64(state);
      const uint64_t r = state;
      uint64_t key;
      if (r % 10 == 0) {
        key = 0xfeedULL;  // Mega-hot key.
      } else if (r % 10 < 4) {
        key = 1000000 + (r >> 8) % 16;  // Hot set.
      } else {
        key = (r >> 16) % 200000;  // Long tail, ~120k distinct seen.
      }
      const double score = static_cast<double>(r % 13) - 6.0;
      splits[s].push_back(ScoreEventLike{key, score});
    }
  }
  return splits;
}

Job<ScoreEventLike, uint64_t, double, std::pair<uint64_t, double>> StressJob(
    bool combine) {
  Job<ScoreEventLike, uint64_t, double, std::pair<uint64_t, double>> job;
  job.map_fn = [](const std::vector<ScoreEventLike>& split,
                  Emitter<uint64_t, double>* out) {
    for (const ScoreEventLike& e : split) out->Emit(e.key, e.score);
  };
  job.reduce_fn = [](const uint64_t& key, Span<double> values,
                     std::vector<std::pair<uint64_t, double>>* out) {
    double sum = 0.0;
    for (double v : values) sum += v;
    out->emplace_back(key, sum);
  };
  if (combine) {
    job.combine_fn = [](const uint64_t&, Span<double> values) {
      double sum = 0.0;
      for (double v : values) sum += v;
      return sum;
    };
  }
  job.fixed_tuple_bytes = 12;
  return job;
}

uint64_t Fnv1a(const void* data, size_t bytes, uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

uint64_t DigestOutput(
    const std::vector<std::pair<uint64_t, double>>& output) {
  uint64_t h = 1469598103934665603ULL;
  for (const auto& [key, sum] : output) {
    h = Fnv1a(&key, sizeof(key), h);
    h = Fnv1a(&sum, sizeof(sum), h);
  }
  return h;
}

TEST(EngineStressTest, HighCardinalityBitIdentityMatrix) {
  const auto splits = StressSplits();
  const size_t previous_limit = GetParallelismLimit();

  // Value-level reference: per-key exact sums in split/emit order,
  // computed with no engine at all.
  std::map<uint64_t, double> expected;
  for (const auto& split : splits) {
    for (const ScoreEventLike& e : split) expected[e.key] += e.score;
  }
  ASSERT_GT(expected.size(), 100000u) << "stress input lost its cardinality";

  for (const bool combine : {false, true}) {
    for (const size_t tasks : {size_t{1}, size_t{3}, size_t{8}}) {
      auto job = StressJob(combine);
      job.num_reduce_tasks = tasks;

      SetParallelismLimit(1);
      auto reference = RunJob(splits, job);
      ASSERT_TRUE(reference.ok());
      const uint64_t reference_digest = DigestOutput(reference.Value().output);

      // The sequential engine's grouping must match the map reference
      // exactly (integer-valued doubles: no rounding slack needed).
      ASSERT_EQ(reference.Value().output.size(), expected.size());
      for (const auto& [key, sum] : reference.Value().output) {
        auto it = expected.find(key);
        ASSERT_NE(it, expected.end()) << "unknown key " << key;
        ASSERT_EQ(sum, it->second) << "key " << key;
      }

      for (const size_t limit : {size_t{2}, size_t{8}}) {
        SetParallelismLimit(limit);
        auto parallel = RunJob(splits, job);
        ASSERT_TRUE(parallel.ok());
        EXPECT_EQ(DigestOutput(parallel.Value().output), reference_digest)
            << "combine=" << combine << " tasks=" << tasks
            << " limit=" << limit;
        EXPECT_EQ(parallel.Value().stats.shuffle_bytes,
                  reference.Value().stats.shuffle_bytes);
        EXPECT_EQ(parallel.Value().stats.shuffle_tuples,
                  reference.Value().stats.shuffle_tuples);
      }
    }
  }
  SetParallelismLimit(previous_limit);
}

TEST(EngineStressTest, SingleKeyAllValuesPreservesEmitOrder) {
  // Every tuple shares one key: the reduce span must present all values
  // in (map task order, emit order) — the strictest stability case.
  Job<int, uint64_t, double, double> job;
  job.map_fn = [](const std::vector<int>& split,
                  Emitter<uint64_t, double>* out) {
    for (int v : split) out->Emit(77, static_cast<double>(v));
  };
  std::vector<double> seen;
  job.task_reduce_fn = [&seen](ReduceGroups<uint64_t, double>& groups,
                               std::vector<double>*) {
    ASSERT_EQ(groups.size(), 1u);
    for (double v : groups.values(0)) seen.push_back(v);
  };
  job.fixed_tuple_bytes = 12;
  const std::vector<std::vector<int>> splits = {{1, 2, 3}, {4, 5}, {6}};
  const size_t previous_limit = GetParallelismLimit();
  for (const size_t limit : {size_t{1}, size_t{8}}) {
    SetParallelismLimit(limit);
    seen.clear();
    auto result = RunJob(splits, job);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(seen, (std::vector<double>{1, 2, 3, 4, 5, 6}))
        << "limit = " << limit;
  }
  SetParallelismLimit(previous_limit);
}

TEST(EngineStressTest, EmptyPartitionsReachReducers) {
  // A partitioner that uses only 2 of 8 reduce tasks: the other 6 run on
  // empty groups and must neither crash nor emit.
  Job<int, uint64_t, double, std::pair<uint64_t, double>> job;
  job.map_fn = [](const std::vector<int>& split,
                  Emitter<uint64_t, double>* out) {
    for (int v : split) {
      out->Emit(static_cast<uint64_t>(v), 1.0);
    }
  };
  job.reduce_fn = [](const uint64_t& key, Span<double> values,
                     std::vector<std::pair<uint64_t, double>>* out) {
    out->emplace_back(key, static_cast<double>(values.size()));
  };
  job.fixed_tuple_bytes = 12;
  job.num_reduce_tasks = 8;
  job.partition_fn = [](const uint64_t& key) {
    return static_cast<size_t>(key % 2 == 0 ? 0 : 3);
  };
  auto result = RunJob({{1, 2, 3, 4, 5, 6}}, job);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.Value().output.size(), 6u);
  EXPECT_EQ(result.Value().stats.num_reduce_tasks, 8u);
}

// Arena chunk-boundary integration: an emitter with default chunking that
// crosses many chunk boundaries still round-trips every tuple (the
// 400k-tuple matrix above crosses ~100 boundaries per task already; this
// pins the exact boundary arithmetic with a prime tuple count).
TEST(EngineStressTest, ChunkBoundaryRoundTrip) {
  Arena arena;
  Emitter<uint64_t, double> emitter(&arena, /*chunk_elems=*/7);
  const size_t n = 7 * 13 + 5;  // Partial final chunk.
  for (size_t i = 0; i < n; ++i) {
    emitter.Emit(i, static_cast<double>(i) * 0.5);
  }
  EXPECT_EQ(emitter.size(), n);
  EXPECT_EQ(emitter.keys().chunk_count(), 14u);
  size_t i = 0;
  ColumnRuns(emitter.keys(), emitter.values())(
      [&](const uint64_t* keys, double* values, size_t count) {
        for (size_t j = 0; j < count; ++j, ++i) {
          ASSERT_EQ(keys[j], i);
          ASSERT_EQ(values[j], static_cast<double>(i) * 0.5);
        }
      });
  EXPECT_EQ(i, n);
}

}  // namespace
}  // namespace csod::mr
